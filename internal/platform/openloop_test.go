package platform

import "testing"

func openLoopToy() SystemConfig {
	sys := toy()
	// 1M cycles/s; a 1-prefix replace costs ~100+10+5+20+(50+200) = 385
	// cycles plus rtrmgr 0 => ~2600 msgs/s capacity.
	return sys
}

func TestOpenLoopSustainedUnderCapacity(t *testing.T) {
	sys := openLoopToy()
	res, err := NewSim(sys).RunOpenLoop(OpenLoopSpec{
		Kind: KindAnnounce, PrefixesPerMsg: 1, MsgsPerSec: 500, Duration: 5,
	}, CrossTraffic{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sustained {
		t.Fatalf("500 msg/s should be sustainable: %+v", res)
	}
	if res.KeepaliveMissed {
		t.Fatal("keepalive missed at low load")
	}
	if res.MaxLag > 1 {
		t.Fatalf("pipeline lag %.2fs at low load", res.MaxLag)
	}
	if res.ProcessedTPS < 400 {
		t.Fatalf("processed tps = %.0f", res.ProcessedTPS)
	}
}

func TestOpenLoopOverloadNotSustained(t *testing.T) {
	sys := openLoopToy()
	res, err := NewSim(sys).RunOpenLoop(OpenLoopSpec{
		Kind: KindAnnounce, PrefixesPerMsg: 1, MsgsPerSec: 50000, Duration: 5,
		DrainGrace: 2,
	}, CrossTraffic{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sustained {
		t.Fatalf("50k msg/s must overload the 1 MHz toy system: %+v", res)
	}
	if res.MaxBacklog == 0 {
		t.Fatal("no backlog recorded under overload")
	}
}

func TestOpenLoopKeepaliveMiss(t *testing.T) {
	sys := openLoopToy()
	// Slight overload with a long window: messages eventually queue for
	// longer than a short hold time.
	res, err := NewSim(sys).RunOpenLoop(OpenLoopSpec{
		Kind: KindAnnounce, PrefixesPerMsg: 1, MsgsPerSec: 4000, Duration: 20,
		HoldTime: 3, DrainGrace: 60,
	}, CrossTraffic{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.KeepaliveMissed {
		t.Fatalf("expected keepalive miss: lag %.2fs sustained=%v", res.MaxLag, res.Sustained)
	}
}

func TestOpenLoopMonotoneInRate(t *testing.T) {
	sys := openLoopToy()
	delays := make([]float64, 0, 3)
	for _, rate := range []float64{500, 2000, 3500} {
		res, err := NewSim(sys).RunOpenLoop(OpenLoopSpec{
			Kind: KindAnnounce, PrefixesPerMsg: 1, MsgsPerSec: rate, Duration: 5,
			DrainGrace: 120,
		}, CrossTraffic{})
		if err != nil {
			t.Fatal(err)
		}
		delays = append(delays, res.MaxLag)
	}
	// Allow quantum-granularity jitter between under-capacity points.
	const eps = 2e-3
	if !(delays[0] <= delays[1]+eps && delays[1] <= delays[2]+eps) {
		t.Fatalf("pipeline lag not monotone in rate: %v", delays)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	if _, err := NewSim(toy()).RunOpenLoop(OpenLoopSpec{}, CrossTraffic{}); err == nil {
		t.Fatal("zero-rate spec should error")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	sys := PentiumIII()
	spec := OpenLoopSpec{Kind: KindReplace, PrefixesPerMsg: 1, MsgsPerSec: 150, Duration: 5}
	a, err := NewSim(sys).RunOpenLoop(spec, CrossTraffic{Mbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSim(sys).RunOpenLoop(spec, CrossTraffic{Mbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("open loop not deterministic:\n%+v\n%+v", a, b)
	}
}
