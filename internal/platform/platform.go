// Package platform simulates the four router systems of the paper's
// Table II — uni-core Pentium III, dual-core Xeon, IXP2400 network
// processor, and the Cisco 3620 commercial router — as a deterministic
// fluid discrete-event model.
//
// BGP processing is expressed as batches of prefix work flowing through
// the XORP-like process pipeline (bgp → policy → rib → fea, plus the
// rtrmgr manager), scheduled over simulated cores with SMT, weighted fair
// sharing, and interrupt-priority cross-traffic. Per-system cycle costs
// are calibrated from the paper's own Table III measurements (see
// costmodel.go); the cross-traffic figures are then *predictions* of the
// model, not fits.
//
// The simulation advances in fixed quanta (default 1ms of simulated
// time). Within each quantum:
//
//  1. cross-traffic packets claim interrupt + kernel forwarding cycles
//     first (on systems whose data path shares the control cores);
//  2. the remaining capacity is divided among runnable processes by
//     weighted fair share, with each process capped at one hardware
//     thread and co-scheduled threads paying an SMT efficiency penalty;
//  3. batches consume cycles and hand off to the next pipeline stage on
//     completion (message-granular handoff);
//  4. per-process busy cycles, interrupt load, and achieved forwarding
//     rate are accumulated into trace buckets.
//
// The model is fully deterministic: identical inputs give identical
// results, which the tests assert.
package platform

import "fmt"

// Proc identifies a modeled control-plane process. The names mirror the
// XORP processes visible in the paper's Figures 3 and 4.
type Proc int

// Modeled processes.
const (
	ProcBGP Proc = iota
	ProcPolicy
	ProcRIB
	ProcFEA
	ProcRtrmgr
	numProcs
)

// String returns the xorp-style process name.
func (p Proc) String() string {
	switch p {
	case ProcBGP:
		return "bgp"
	case ProcPolicy:
		return "policy"
	case ProcRIB:
		return "rib"
	case ProcFEA:
		return "fea"
	case ProcRtrmgr:
		return "rtrmgr"
	}
	return fmt.Sprintf("proc(%d)", int(p))
}

// CostModel holds the per-operation cycle costs of one system. All values
// are cycles of that system's control processor unless suffixed Ns.
type CostModel struct {
	PerMsgBGP            float64 // per received UPDATE message (transport + header)
	PerPrefixBGP         float64 // per announced prefix parsed in bgp
	PerPrefixBGPWithdraw float64 // per withdrawn prefix parsed in bgp
	PerPrefixPolicy      float64 // per prefix import-policy evaluation
	PerPrefixRIB         float64 // per prefix decision process + Loc-RIB update
	PerPrefixRIBReplace  float64 // extra rib work when the best route is replaced
	PerFIBChange         float64 // fea work per inserted FIB entry
	PerFIBWithdraw       float64 // fea work per deleted FIB entry
	PerFIBReplace        float64 // fea work per replaced FIB entry (0 = PerFIBChange)
	PerFIBBatch          float64 // fea IPC overhead per commit batch
	// PerFIBBatchSuper* add n^2-scaled cycles to a batch commit of n
	// entries (insert/withdraw/replace respectively). They model the
	// superlinear cost of very large kernel FIB transactions observed on
	// the dual-core system, where Table III shows large packets *slowing
	// down* FIB-changing scenarios (4 and 8) — a second-order effect the
	// paper's text does not discuss. Zero for systems without it.
	PerFIBBatchSuperA float64
	PerFIBBatchSuperW float64
	PerFIBBatchSuperR float64
	PerPrefixAdjOut   float64 // per prefix re-advertisement emission (in bgp)
	PerMsgAdjOut      float64 // per emitted UPDATE message
	// AdjOutAmortized controls replacement re-advertisement packing: when
	// true the per-message emission cost is paid once per inbound batch
	// (the implementation coalesces outbound updates); when false each
	// replaced prefix is re-advertised in its own message.
	AdjOutAmortized bool
	PerMsgPacingNs  float64 // non-CPU serialization latency per received message
	RtrmgrFrac      float64 // manager overhead as a fraction of pipeline cycles

	PerCrossPktIntr   float64 // interrupt cycles per cross-traffic packet
	PerCrossPktFwd    float64 // kernel forwarding cycles per cross-traffic packet
	FIBLockFwdPenalty float64 // forwarding cycles lost per executed fea cycle
}

// SystemConfig describes one modeled router platform.
type SystemConfig struct {
	Name           string
	Cores          int     // physical control-plane cores
	ThreadsPerCore int     // hardware threads per core (SMT)
	SMTEfficiency  float64 // extra throughput of a second thread (0..1)
	ClockHz        float64 // cycles per second per core
	SharedDataPath bool    // forwarding shares the control cores
	ForwardCapMbps float64 // line-rate limit of the forwarding path
	CrossPktBytes  int     // cross-traffic packet size
	// ControlPriority inverts the OS priority relationship: BGP processing
	// runs ahead of interrupt/forwarding work, which only gets leftover
	// cycles. Real kernels do the opposite (the paper's Section V.B); this
	// flag exists for the "what if" ablation.
	ControlPriority bool
	Costs           CostModel
	// Weights bias the fair-share scheduler per process; zero means the
	// default weight of 1. They shape the CPU-load traces (which process
	// dominates when) without changing total work.
	Weights [numProcs]float64
}

// threadCap returns the per-quantum cycle capacity of one core running k
// co-scheduled threads.
func (sc *SystemConfig) coreCapacity(dt float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	mult := 1.0
	if k > 1 {
		mult = 1 + sc.SMTEfficiency*float64(min(k, sc.ThreadsPerCore)-1)
	}
	return sc.ClockHz * dt * mult
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ExportBatchSize is the Loc-RIB walk batch used for Phase 2 initial
// table transfer (routes per emitted UPDATE).
const ExportBatchSize = 500

// stage is a pipeline position of a batch.
type stage int

const (
	stBGP stage = iota
	stPolicy
	stRIB
	stFEA
	stOut
	stDone
)

func (s stage) proc() Proc {
	switch s {
	case stBGP, stOut:
		return ProcBGP
	case stPolicy:
		return ProcPolicy
	case stRIB:
		return ProcRIB
	case stFEA:
		return ProcFEA
	}
	return ProcRtrmgr
}

// BatchKind classifies the routing operation a batch performs.
type BatchKind int

// Batch kinds, one per benchmark workload shape.
const (
	// KindAnnounce is a fresh announcement installing new FIB entries
	// (Scenarios 1-2 and Phase 1 everywhere).
	KindAnnounce BatchKind = iota
	// KindWithdraw removes routes and FIB entries (Scenarios 3-4).
	KindWithdraw
	// KindAnnounceNoChange is an announcement losing the decision process:
	// no FIB change (Scenarios 5-6).
	KindAnnounceNoChange
	// KindReplace is an announcement winning the decision process:
	// best-route replacement, per-prefix FIB commits, re-advertisement
	// (Scenarios 7-8).
	KindReplace
	// KindExport is Phase 2: the router advertises its Loc-RIB to a new
	// peer (emission work only).
	KindExport
)

// batch is a unit of pipeline work: the prefixes of one UPDATE message.
type batch struct {
	kind     BatchKind
	prefixes int
	st       stage
	rem      float64 // cycles remaining in the current stage
	blocked  float64 // absolute sim time (s) before which bgp may not start it
	arrival  float64 // absolute sim time (s) the message arrived (open loop)
	track    bool    // open-loop lag accounting enabled for this batch
}

// stageCycles computes the cycle cost of a batch in a stage.
func stageCycles(c *CostModel, b *batch) float64 {
	n := float64(b.prefixes)
	switch b.st {
	case stBGP:
		switch b.kind {
		case KindWithdraw:
			return c.PerMsgBGP + n*c.PerPrefixBGPWithdraw
		case KindExport:
			return 0 // export batches skip the receive path
		default:
			return c.PerMsgBGP + n*c.PerPrefixBGP
		}
	case stPolicy:
		if b.kind == KindWithdraw || b.kind == KindExport {
			return 0
		}
		return n * c.PerPrefixPolicy
	case stRIB:
		if b.kind == KindExport {
			return 0
		}
		cycles := n * c.PerPrefixRIB
		if b.kind == KindReplace {
			cycles += n * c.PerPrefixRIBReplace
		}
		return cycles
	case stFEA:
		switch b.kind {
		case KindAnnounce:
			// FIB commits are batched at message granularity.
			return n*c.PerFIBChange + c.PerFIBBatch + n*n*c.PerFIBBatchSuperA
		case KindWithdraw:
			return n*c.PerFIBWithdraw + c.PerFIBBatch + n*n*c.PerFIBBatchSuperW
		case KindReplace:
			// Best-route replacements trickle through the decision process
			// one prefix at a time, so each FIB commit pays the IPC cost.
			fr := c.PerFIBReplace
			if fr == 0 {
				fr = c.PerFIBChange
			}
			return n*(fr+c.PerFIBBatch) + n*n*c.PerFIBBatchSuperR
		default:
			return 0
		}
	case stOut:
		switch b.kind {
		case KindReplace:
			if c.AdjOutAmortized {
				return n*c.PerPrefixAdjOut + c.PerMsgAdjOut
			}
			// Each replacement is re-advertised in its own message.
			return n * (c.PerPrefixAdjOut + c.PerMsgAdjOut)
		case KindExport:
			return n*c.PerPrefixAdjOut + c.PerMsgAdjOut
		default:
			return 0
		}
	}
	return 0
}

// nextStage advances the pipeline position for a batch kind.
func nextStage(b *batch) stage {
	switch b.st {
	case stBGP:
		if b.kind == KindWithdraw {
			return stRIB
		}
		if b.kind == KindExport {
			return stOut
		}
		return stPolicy
	case stPolicy:
		return stRIB
	case stRIB:
		switch b.kind {
		case KindAnnounce, KindWithdraw, KindReplace:
			return stFEA
		}
		return stDone
	case stFEA:
		if b.kind == KindReplace {
			return stOut
		}
		return stDone
	case stOut:
		return stDone
	}
	return stDone
}
