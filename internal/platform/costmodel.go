package platform

// This file defines the four modeled systems of Table II. The cycle
// constants are calibrated against the paper's Table III (transactions per
// second without cross-traffic) by solving the per-scenario cost equations:
//
//   tps = capacity / (cycles per prefix transaction)
//
// where the cycles decompose into per-message overhead, per-prefix parse,
// policy, decision, FIB commit (+ per-batch IPC), and re-advertisement
// work. The derivation for the Pentium III (the reference system):
//
//   Scenario 5 (small, no FIB change):  800e6/1111.1 = 720k cycles/prefix
//   Scenario 6 (large, no FIB change):  800e6/3636.4 = 220k cycles/prefix
//     => per-message overhead ~ 500k, parse+policy+rib ~ 220k
//   Scenario 1 vs 2 isolate the FIB commit and its per-batch IPC;
//   Scenario 3 vs 4 the withdrawal path; Scenario 7 vs 8 the replacement
//   and re-advertisement path (see DESIGN.md section 4.2).
//
// The remaining systems follow the same structure with their own
// constants. Cross-traffic costs are NOT fitted to Figure 5; they are set
// from the paper's Figure 6 observation that 300 Mbps of cross-traffic
// costs the Pentium III 20-30% CPU in interrupt processing, and the
// figures are then predictions of the model.

// PentiumIII models the uni-core router: one 800 MHz core shared by
// forwarding and all control processes, PCI-bus-limited to 315 Mbps.
func PentiumIII() SystemConfig {
	return SystemConfig{
		Name:           "PentiumIII",
		Cores:          1,
		ThreadsPerCore: 1,
		ClockHz:        800e6,
		SharedDataPath: true,
		ForwardCapMbps: 315,
		CrossPktBytes:  1000,
		Costs: CostModel{
			PerMsgBGP:            500e3,
			PerPrefixBGP:         80e3,
			PerPrefixBGPWithdraw: 20e3,
			PerPrefixPolicy:      40e3,
			PerPrefixRIB:         100e3,
			PerPrefixRIBReplace:  500e3,
			PerFIBChange:         2.5e6,
			PerFIBWithdraw:       2.2e6,
			PerFIBBatch:          1.1e6,
			PerPrefixAdjOut:      800e3,
			PerMsgAdjOut:         1.24e6,
			RtrmgrFrac:           0.01,
			PerCrossPktIntr:      3000,
			PerCrossPktFwd:       2300,
			FIBLockFwdPenalty:    0.08,
		},
		Weights: weights(3, 1, 2, 2, 0.5),
	}
}

// Xeon models the dual-core router: two 3.0 GHz cores with two SMT
// threads each, PCIe-limited to 784 Mbps. Per-cycle costs are higher than
// the Pentium III's (NetBurst-era IPC), which the calibration absorbs.
func Xeon() SystemConfig {
	return SystemConfig{
		Name:           "Xeon",
		Cores:          2,
		ThreadsPerCore: 2,
		SMTEfficiency:  0.25,
		ClockHz:        3e9,
		SharedDataPath: true,
		ForwardCapMbps: 784,
		CrossPktBytes:  1000,
		Costs: CostModel{
			PerMsgBGP:            750e3,
			PerPrefixBGP:         120e3,
			PerPrefixBGPWithdraw: 30e3,
			PerPrefixPolicy:      60e3,
			PerPrefixRIB:         290e3,
			PerPrefixRIBReplace:  750e3,
			PerFIBChange:         850e3,
			PerFIBWithdraw:       465e3,
			PerFIBBatch:          420e3,
			PerFIBBatchSuperA:    968,
			PerFIBBatchSuperW:    2048,
			PerFIBBatchSuperR:    6400,
			PerPrefixAdjOut:      1.0e6,
			PerMsgAdjOut:         1.8e6,
			RtrmgrFrac:           0.01,
			PerCrossPktIntr:      9000,
			PerCrossPktFwd:       6000,
			FIBLockFwdPenalty:    0.08,
		},
		Weights: weights(3, 1, 2, 2, 0.5),
	}
}

// IXP2400 models the network processor router: the slow embedded XScale
// control core runs BGP while the eight packet processors forward
// independently, so cross-traffic never touches the control plane.
func IXP2400() SystemConfig {
	return SystemConfig{
		Name:           "IXP2400",
		Cores:          1,
		ThreadsPerCore: 1,
		ClockHz:        600e6,
		SharedDataPath: false,
		ForwardCapMbps: 940,
		CrossPktBytes:  1000,
		Costs: CostModel{
			PerMsgBGP:            3.4e6,
			PerPrefixBGP:         600e3,
			PerPrefixBGPWithdraw: 150e3,
			PerPrefixPolicy:      300e3,
			PerPrefixRIB:         1.1e6,
			PerPrefixRIBReplace:  6.1e6,
			PerFIBChange:         9.5e6,
			PerFIBWithdraw:       8.86e6,
			PerFIBBatch:          3.8e6,
			PerFIBBatchSuperR:    7400,
			PerPrefixAdjOut:      6e6,
			PerMsgAdjOut:         9e6,
			AdjOutAmortized:      true,
			RtrmgrFrac:           0.30,
			PerCrossPktIntr:      0,
			PerCrossPktFwd:       0,
			FIBLockFwdPenalty:    0,
		},
		Weights: weights(3, 1, 2, 2, 1),
	}
}

// Cisco3620 models the commercial router as a black box: a normalized
// 1 GHz control processor whose BGP input path is paced at roughly one
// received message per 93 ms (reproducing the ~10.7 tps small-packet
// plateau across all scenarios), cheap per-prefix processing once a
// message is accepted, and 100 Mbps ports that saturate at 78 Mbps.
func Cisco3620() SystemConfig {
	return SystemConfig{
		Name:           "Cisco",
		Cores:          1,
		ThreadsPerCore: 1,
		ClockHz:        1e9,
		SharedDataPath: true,
		ForwardCapMbps: 78,
		CrossPktBytes:  1000,
		Costs: CostModel{
			PerMsgBGP:            1e6,
			PerPrefixBGP:         120e3,
			PerPrefixBGPWithdraw: 10e3,
			PerPrefixPolicy:      40e3,
			PerPrefixRIB:         138e3,
			PerPrefixRIBReplace:  0,
			PerFIBChange:         101e3,
			PerFIBWithdraw:       192e3,
			PerFIBBatch:          30e3,
			PerPrefixAdjOut:      0,
			PerMsgAdjOut:         0,
			PerMsgPacingNs:       93.5e6,
			RtrmgrFrac:           0,
			PerCrossPktIntr:      20e3,
			PerCrossPktFwd:       72e3,
			FIBLockFwdPenalty:    0.05,
		},
		Weights: weights(1, 1, 1, 1, 1),
	}
}

func weights(bgp, pol, rib, fea, mgr float64) [numProcs]float64 {
	return [numProcs]float64{bgp, pol, rib, fea, mgr}
}

// Systems returns the four modeled router platforms in the paper's
// Table II/III column order.
func Systems() []SystemConfig {
	return []SystemConfig{PentiumIII(), Xeon(), IXP2400(), Cisco3620()}
}

// SystemByName resolves a system by its Table II name
// (case-sensitive: "PentiumIII", "Xeon", "IXP2400", "Cisco").
func SystemByName(name string) (SystemConfig, bool) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, true
		}
	}
	return SystemConfig{}, false
}
