package platform

import (
	"fmt"

	"bgpbench/internal/trace"
)

// Phase is one benchmark phase: a homogeneous stream of UPDATE messages
// (or export work) injected at the phase start and processed to
// completion.
type Phase struct {
	Name           string
	Kind           BatchKind
	Messages       int
	PrefixesPerMsg int
}

// Prefixes returns the total prefix operations in the phase.
func (p Phase) Prefixes() int { return p.Messages * p.PrefixesPerMsg }

// CrossTraffic is the data-plane load applied while the benchmark runs.
type CrossTraffic struct {
	Mbps float64
}

// PhaseResult reports one phase's timing.
type PhaseResult struct {
	Name     string
	Start    float64 // seconds from simulation start
	Duration float64 // seconds
	Prefixes int
	// TPS is prefix transactions per second of this phase — the paper's
	// metric.
	TPS float64
	// OfferedMbps / ForwardedMbps summarize the data plane during the
	// phase; they differ when contention causes loss (Figure 6c).
	OfferedMbps   float64
	ForwardedMbps float64
}

// Result is a full simulation outcome.
type Result struct {
	System string
	Phases []PhaseResult
	// Traces carries per-process CPU load in percent of one core
	// ("cpu:<proc>"), interrupt load ("cpu:interrupts"), and achieved
	// forwarding rate in Mbps ("fwd_mbps"), in 1-second buckets.
	Traces *trace.Set
	// TotalBusyCycles per process, for ablation assertions.
	TotalBusyCycles [numProcs]float64
}

// Sim is the simulation engine. Create with NewSim, call RunPhases.
type Sim struct {
	sys    SystemConfig
	dt     float64
	bucket float64

	now        float64
	queues     [numProcs][]*batch
	pacingFree float64
	traces     *trace.Set
	busy       [numProcs]float64
	rr         int // rotation offset so oversubscribed processes time-slice
	// maxLag tracks the worst end-to-end delay of tracked (open-loop)
	// batches from arrival to pipeline completion. A router whose
	// processing lags its input by more than the hold time cannot honor
	// the protocol's liveness expectations (keepalive analysis).
	maxLag float64

	// per-quantum scratch
	weights [numProcs]float64
}

// NewSim builds a simulator for a system. Quantum and trace bucket default
// to 1ms and 1s.
func NewSim(sys SystemConfig) *Sim {
	s := &Sim{
		sys:    sys,
		dt:     1e-3,
		bucket: 1.0,
	}
	for p := Proc(0); p < numProcs; p++ {
		w := sys.Weights[p]
		if w <= 0 {
			w = 1
		}
		s.weights[p] = w
	}
	s.traces = trace.NewSet(s.bucket)
	return s
}

// SetQuantum overrides the scheduling quantum (seconds of simulated time
// per step). Smaller quanta refine capacity-sharing accuracy at linear
// simulation cost; results must not depend materially on the choice
// (asserted by TestQuantumInsensitivity).
func (s *Sim) SetQuantum(dt float64) {
	if dt > 0 {
		s.dt = dt
	}
}

// inject queues a phase's batches at the current simulated time.
func (s *Sim) inject(ph Phase) {
	c := &s.sys.Costs
	if s.pacingFree < s.now {
		s.pacingFree = s.now
	}
	for i := 0; i < ph.Messages; i++ {
		b := &batch{kind: ph.Kind, prefixes: ph.PrefixesPerMsg, st: stBGP}
		if c.PerMsgPacingNs > 0 && ph.Kind != KindExport {
			b.blocked = s.pacingFree
			s.pacingFree += c.PerMsgPacingNs * 1e-9
		}
		b.rem = stageCycles(c, b)
		s.advanceZeroStages(b)
		if b.st != stDone {
			s.queues[b.st.proc()] = append(s.queues[b.st.proc()], b)
		}
		// Manager overhead: rtrmgr performs work proportional to the
		// pipeline work of each batch (config pushes, status polling).
		if c.RtrmgrFrac > 0 {
			total := totalCycles(c, ph.Kind, ph.PrefixesPerMsg)
			if total > 0 {
				rb := &batch{kind: ph.Kind, prefixes: ph.PrefixesPerMsg, st: stDone}
				rb.rem = total * c.RtrmgrFrac
				s.queues[ProcRtrmgr] = append(s.queues[ProcRtrmgr], rb)
			}
		}
	}
}

// advanceZeroStages skips stages whose cost is zero so queues only hold
// batches with real work.
func (s *Sim) advanceZeroStages(b *batch) {
	c := &s.sys.Costs
	for b.st != stDone && b.rem == 0 {
		b.st = nextStage(b)
		if b.st == stDone {
			if b.track {
				if lag := s.now - b.arrival; lag > s.maxLag {
					s.maxLag = lag
				}
			}
			return
		}
		b.rem = stageCycles(c, b)
	}
}

// totalCycles sums a batch's cycles over all stages.
func totalCycles(c *CostModel, kind BatchKind, prefixes int) float64 {
	b := &batch{kind: kind, prefixes: prefixes, st: stBGP}
	total := 0.0
	for b.st != stDone {
		total += stageCycles(c, b)
		b.st = nextStage(b)
	}
	return total
}

// idle reports whether all queues are empty.
func (s *Sim) idle() bool {
	for p := Proc(0); p < numProcs; p++ {
		if len(s.queues[p]) > 0 {
			return false
		}
	}
	return true
}

// RunPhases executes the phases in order, each injected when the previous
// one has fully drained, under constant cross-traffic. maxSimSeconds
// bounds runaway configurations (0 means 24 simulated hours).
func (s *Sim) RunPhases(phases []Phase, cross CrossTraffic, maxSimSeconds float64) (Result, error) {
	if maxSimSeconds <= 0 {
		maxSimSeconds = 24 * 3600
	}
	res := Result{System: s.sys.Name, Traces: s.traces}
	for _, ph := range phases {
		start := s.now
		s.inject(ph)
		fwdSum, fwdQuanta := 0.0, 0.0
		for !s.idle() {
			if s.now-start > maxSimSeconds {
				return res, fmt.Errorf("platform: phase %q exceeded %v simulated seconds", ph.Name, maxSimSeconds)
			}
			fwd := s.step(cross)
			fwdSum += fwd
			fwdQuanta++
		}
		dur := s.now - start
		pr := PhaseResult{
			Name:        ph.Name,
			Start:       start,
			Duration:    dur,
			Prefixes:    ph.Prefixes(),
			OfferedMbps: s.offeredMbps(cross),
		}
		if dur > 0 {
			pr.TPS = float64(pr.Prefixes) / dur
		}
		if fwdQuanta > 0 {
			pr.ForwardedMbps = fwdSum / fwdQuanta
		}
		res.Phases = append(res.Phases, pr)
	}
	res.TotalBusyCycles = s.busy
	return res, nil
}

// offeredMbps clamps the requested cross-traffic to the system's line rate.
func (s *Sim) offeredMbps(cross CrossTraffic) float64 {
	m := cross.Mbps
	if m > s.sys.ForwardCapMbps {
		m = s.sys.ForwardCapMbps
	}
	if m < 0 {
		m = 0
	}
	return m
}

// step advances one quantum and returns the achieved forwarding rate in
// Mbps for this quantum.
func (s *Sim) step(cross CrossTraffic) float64 {
	sys := &s.sys
	c := &sys.Costs
	dt := s.dt
	bucketIdx := int(s.now / s.bucket)

	// --- Data plane first: interrupts preempt everything. ---
	offered := s.offeredMbps(cross)
	demandPkts := 0.0
	fwdDemand := 0.0
	if offered > 0 && sys.CrossPktBytes > 0 {
		demandPkts = offered * 1e6 * dt / 8 / float64(sys.CrossPktBytes)
		fwdDemand = demandPkts * (c.PerCrossPktIntr + c.PerCrossPktFwd)
	}
	baseCap := float64(sys.Cores) * sys.ClockHz * dt
	reserved := 0.0
	if sys.SharedDataPath && !sys.ControlPriority {
		reserved = fwdDemand
		if cap95 := 0.95 * baseCap; reserved > cap95 {
			reserved = cap95
		}
	}

	// --- Control plane: weighted fair share of the remainder. ---
	runnable := make([]Proc, 0, numProcs)
	for p := Proc(0); p < numProcs; p++ {
		if q := s.queues[p]; len(q) > 0 && q[0].blocked <= s.now {
			runnable = append(runnable, p)
		}
	}
	feaCycles := 0.0
	ctrlCycles := 0.0
	if len(runnable) > 0 {
		// Distribute processes over hardware threads. When there are more
		// runnable processes than threads, a rotating offset time-slices
		// them across quanta (the OS scheduler's round robin); on a
		// single-thread system all processes instead share the core by
		// weighted fair share, which models fine-grained time slicing.
		type coreState struct {
			procs []Proc
		}
		cores := make([]coreState, sys.Cores)
		if sys.Cores*sys.ThreadsPerCore <= 1 {
			cores[0].procs = runnable
		} else {
			rot := make([]Proc, 0, len(runnable))
			off := s.rr % len(runnable)
			rot = append(rot, runnable[off:]...)
			rot = append(rot, runnable[:off]...)
			s.rr++
			ci := 0
			for _, p := range rot {
				for try := 0; try < sys.Cores; try++ {
					k := (ci + try) % sys.Cores
					if len(cores[k].procs) < sys.ThreadsPerCore {
						cores[k].procs = append(cores[k].procs, p)
						ci = (k + 1) % sys.Cores
						break
					}
				}
			}
		}
		intrPerCore := reserved / float64(sys.Cores)
		singleThread := sys.ClockHz * dt
		for k := range cores {
			procs := cores[k].procs
			if len(procs) == 0 {
				continue
			}
			capc := sys.coreCapacity(dt, len(procs)) - intrPerCore
			if capc <= 0 {
				continue
			}
			// Work-conserving weighted fair share: leftover grant from
			// processes that ran out of work (or hit the one-thread cap)
			// is redistributed to the others within the quantum.
			granted := make(map[Proc]float64, len(procs))
			remaining := capc
			active := append([]Proc(nil), procs...)
			for pass := 0; pass < int(numProcs) && remaining > 1e-9 && len(active) > 0; pass++ {
				wsum := 0.0
				for _, p := range active {
					wsum += s.weights[p]
				}
				share := remaining
				remaining = 0
				next := active[:0]
				for _, p := range active {
					grant := share * s.weights[p] / wsum
					if room := singleThread - granted[p]; grant > room {
						remaining += grant - room
						grant = room
					}
					used := s.execute(p, grant)
					granted[p] += used
					leftover := grant - used
					if leftover > 1e-9 {
						remaining += leftover
						continue // drained its queue: drop from next pass
					}
					if granted[p] < singleThread-1e-9 {
						next = append(next, p)
					}
				}
				active = next
			}
			for _, p := range procs {
				used := granted[p]
				if used == 0 {
					continue
				}
				s.busy[p] += used
				ctrlCycles += used
				if p == ProcFEA {
					feaCycles += used
				}
				s.traces.Get("cpu:"+p.String()).Add(bucketIdx, 100*used/(sys.ClockHz*s.bucket))
			}
		}
	}

	// --- Data-plane outcome for this quantum. ---
	achievedMbps := offered
	if sys.SharedDataPath && fwdDemand > 0 {
		avail := reserved - c.FIBLockFwdPenalty*feaCycles
		if sys.ControlPriority {
			// Ablation: forwarding only gets what the control plane left.
			avail = baseCap - ctrlCycles - c.FIBLockFwdPenalty*feaCycles
		}
		if avail < 0 {
			avail = 0
		}
		frac := avail / fwdDemand
		if frac > 1 {
			frac = 1
		}
		achievedMbps = offered * frac
		intr := reserved
		if sys.ControlPriority {
			intr = frac * fwdDemand
		}
		s.traces.Get("cpu:interrupts").Add(bucketIdx, 100*intr/(sys.ClockHz*s.bucket))
	}
	if offered > 0 {
		s.traces.Get("fwd_mbps").Add(bucketIdx, achievedMbps*dt/s.bucket)
	}

	s.now += dt
	return achievedMbps
}

// execute consumes up to grant cycles from a process's queue and returns
// the cycles actually used.
func (s *Sim) execute(p Proc, grant float64) float64 {
	used := 0.0
	q := s.queues[p]
	for grant > 1e-9 && len(q) > 0 {
		b := q[0]
		if b.blocked > s.now {
			break
		}
		take := b.rem
		if take > grant {
			take = grant
		}
		b.rem -= take
		grant -= take
		used += take
		if b.rem <= 1e-9 {
			q = q[1:]
			b.st = nextStage(b)
			if b.st == stDone && b.track {
				if lag := s.now - b.arrival; lag > s.maxLag {
					s.maxLag = lag
				}
			}
			if b.st != stDone {
				b.rem = stageCycles(&s.sys.Costs, b)
				s.advanceZeroStages(b)
				if b.st != stDone {
					if b.st.proc() == p {
						q = append(q, b)
					} else {
						s.queues[b.st.proc()] = append(s.queues[b.st.proc()], b)
					}
				}
			}
		}
	}
	s.queues[p] = q
	return used
}
