package fib

import "bgpbench/internal/netaddr"

// BinaryTrie is the textbook one-bit-per-level trie, with one root per
// address family. Lookup walks at most Bits() levels (32 for IPv4, 128 for
// IPv6), remembering the last node that held a route.
type BinaryTrie struct {
	roots [2]*btNode // indexed by netaddr.Family
	n     int
}

type btNode struct {
	child [2]*btNode
	entry Entry
	has   bool
}

// NewBinaryTrie returns an empty binary trie.
func NewBinaryTrie() *BinaryTrie {
	return &BinaryTrie{roots: [2]*btNode{{}, {}}}
}

// Insert adds or replaces the entry for a prefix.
func (t *BinaryTrie) Insert(p netaddr.Prefix, e Entry) {
	n := t.roots[p.Family()]
	a := p.Addr()
	for i := 0; i < p.Len(); i++ {
		b := a.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &btNode{}
		}
		n = n.child[b]
	}
	if !n.has {
		t.n++
	}
	n.entry, n.has = e, true
}

// Delete removes a prefix, pruning now-empty branches.
func (t *BinaryTrie) Delete(p netaddr.Prefix) bool {
	// Record the path so empty nodes can be pruned bottom-up.
	path := make([]*btNode, 0, p.Len()+1)
	n := t.roots[p.Family()]
	a := p.Addr()
	for i := 0; i < p.Len(); i++ {
		path = append(path, n)
		n = n.child[a.Bit(i)]
		if n == nil {
			return false
		}
	}
	if !n.has {
		return false
	}
	n.has = false
	t.n--
	for i := len(path) - 1; i >= 0; i-- {
		child := n
		n = path[i]
		if child.has || child.child[0] != nil || child.child[1] != nil {
			break
		}
		n.child[a.Bit(i)] = nil
	}
	return true
}

// Lookup walks the trie, returning the deepest entry on the path.
func (t *BinaryTrie) Lookup(addr netaddr.Addr) (Entry, bool) {
	var best Entry
	found := false
	n := t.roots[addr.Family()]
	bits := addr.Bits()
	for i := 0; ; i++ {
		if n.has {
			best, found = n.entry, true
		}
		if i == bits {
			break
		}
		n = n.child[addr.Bit(i)]
		if n == nil {
			break
		}
	}
	return best, found
}

// LookupExact returns the entry stored for exactly this prefix.
func (t *BinaryTrie) LookupExact(p netaddr.Prefix) (Entry, bool) {
	n := t.roots[p.Family()]
	a := p.Addr()
	for i := 0; i < p.Len(); i++ {
		n = n.child[a.Bit(i)]
		if n == nil {
			return Entry{}, false
		}
	}
	if !n.has {
		return Entry{}, false
	}
	return n.entry, true
}

// Len returns the number of installed prefixes.
func (t *BinaryTrie) Len() int { return t.n }

// Walk visits entries in address order, IPv4 before IPv6.
func (t *BinaryTrie) Walk(fn func(netaddr.Prefix, Entry) bool) {
	for _, f := range netaddr.Families {
		if !t.walk(t.roots[f], netaddr.ZeroAddr(f), 0, fn) {
			return
		}
	}
}

func (t *BinaryTrie) walk(n *btNode, addr netaddr.Addr, depth int, fn func(netaddr.Prefix, Entry) bool) bool {
	if n == nil {
		return true
	}
	if n.has {
		if !fn(netaddr.PrefixFrom(addr, depth), n.entry) {
			return false
		}
	}
	if depth == addr.Bits() {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr.SetBit(depth), depth+1, fn)
}

// Apply performs the batch as ordered single ops; the trie has no cheaper
// bulk restructuring.
func (t *BinaryTrie) Apply(ops []Op) { applyOps(t, ops) }
