package fib

import (
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
)

func allEngines(t *testing.T) map[string]Engine {
	t.Helper()
	out := make(map[string]Engine, len(EngineNames))
	for _, name := range EngineNames {
		e, err := NewEngine(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = e
	}
	return out
}

func TestNewEngineUnknown(t *testing.T) {
	if _, err := NewEngine("btree"); err == nil {
		t.Fatal("unknown engine name should error")
	}
}

func TestBasicOperations(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			p8 := netaddr.MustParsePrefix("10.0.0.0/8")
			p16 := netaddr.MustParsePrefix("10.1.0.0/16")
			p24 := netaddr.MustParsePrefix("10.1.2.0/24")

			e.Insert(p8, Entry{Port: 1})
			e.Insert(p16, Entry{Port: 2})
			e.Insert(p24, Entry{Port: 3})
			if e.Len() != 3 {
				t.Fatalf("Len = %d, want 3", e.Len())
			}

			cases := []struct {
				addr string
				port int
				ok   bool
			}{
				{"10.1.2.3", 3, true},
				{"10.1.3.1", 2, true},
				{"10.2.0.1", 1, true},
				{"11.0.0.1", 0, false},
			}
			for _, c := range cases {
				got, ok := e.Lookup(netaddr.MustParseAddr(c.addr))
				if ok != c.ok || (ok && got.Port != c.port) {
					t.Errorf("Lookup(%s) = %+v,%v; want port %d,%v", c.addr, got, ok, c.port, c.ok)
				}
			}

			// Replacement does not change Len.
			e.Insert(p16, Entry{Port: 9})
			if e.Len() != 3 {
				t.Fatalf("Len after replace = %d, want 3", e.Len())
			}
			if got, _ := e.Lookup(netaddr.MustParseAddr("10.1.3.1")); got.Port != 9 {
				t.Fatalf("replace not visible: port %d", got.Port)
			}

			// Exact lookups.
			if got, ok := e.LookupExact(p24); !ok || got.Port != 3 {
				t.Fatalf("LookupExact(%v) = %+v,%v", p24, got, ok)
			}
			if _, ok := e.LookupExact(netaddr.MustParsePrefix("10.1.2.0/25")); ok {
				t.Fatal("LookupExact of absent prefix should miss")
			}

			// Deletion uncovers the shorter prefix.
			if !e.Delete(p24) {
				t.Fatal("Delete(p24) = false")
			}
			if e.Delete(p24) {
				t.Fatal("double Delete(p24) = true")
			}
			if got, _ := e.Lookup(netaddr.MustParseAddr("10.1.2.3")); got.Port != 9 {
				t.Fatalf("after delete, Lookup port = %d, want 9", got.Port)
			}
			if e.Len() != 2 {
				t.Fatalf("Len after delete = %d, want 2", e.Len())
			}
		})
	}
}

func TestDefaultRoute(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			e.Insert(netaddr.MustParsePrefix("0.0.0.0/0"), Entry{Port: 7})
			got, ok := e.Lookup(netaddr.MustParseAddr("203.0.113.99"))
			if !ok || got.Port != 7 {
				t.Fatalf("default route lookup = %+v,%v", got, ok)
			}
			if !e.Delete(netaddr.MustParsePrefix("0.0.0.0/0")) {
				t.Fatal("cannot delete default route")
			}
			if _, ok := e.Lookup(netaddr.MustParseAddr("203.0.113.99")); ok {
				t.Fatal("lookup should miss after deleting default route")
			}
		})
	}
}

func TestHostRoutes(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			h := netaddr.MustParsePrefix("192.0.2.1/32")
			e.Insert(h, Entry{Port: 4})
			if got, ok := e.Lookup(netaddr.MustParseAddr("192.0.2.1")); !ok || got.Port != 4 {
				t.Fatalf("host route lookup = %+v,%v", got, ok)
			}
			if _, ok := e.Lookup(netaddr.MustParseAddr("192.0.2.2")); ok {
				t.Fatal("host route must not match neighbours")
			}
		})
	}
}

func TestWalkVisitsAll(t *testing.T) {
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "0.0.0.0/0", "172.16.5.0/24"}
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			for i, s := range prefixes {
				e.Insert(netaddr.MustParsePrefix(s), Entry{Port: i})
			}
			seen := map[netaddr.Prefix]int{}
			e.Walk(func(p netaddr.Prefix, en Entry) bool {
				seen[p] = en.Port
				return true
			})
			if len(seen) != len(prefixes) {
				t.Fatalf("Walk visited %d entries, want %d", len(seen), len(prefixes))
			}
			for i, s := range prefixes {
				if seen[netaddr.MustParsePrefix(s)] != i {
					t.Errorf("prefix %s port = %d, want %d", s, seen[netaddr.MustParsePrefix(s)], i)
				}
			}
			// Early termination.
			count := 0
			e.Walk(func(netaddr.Prefix, Entry) bool {
				count++
				return count < 2
			})
			if count != 2 {
				t.Errorf("early-terminated Walk visited %d, want 2", count)
			}
		})
	}
}

// TestEnginesAgree drives all engines with the same random operation
// sequence and cross-checks every answer against the Linear reference.
func TestEnginesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	ref := NewLinear()
	others := map[string]Engine{
		"binary":   NewBinaryTrie(),
		"patricia": NewPatricia(),
		"hashlen":  NewHashLengths(),
		"poptrie":  NewPoptrie(),
		// SnapshotTable's method set matches Engine, so the concurrent
		// wrapper (and its publish-per-mutation path) rides along here.
		"snapshot": NewSnapshotTable(NewPoptrie()),
	}

	var inserted []netaddr.Prefix
	randomPrefix := func() netaddr.Prefix {
		// Cluster prefixes so deletes and overlaps actually happen.
		return netaddr.PrefixFrom(netaddr.AddrFromV4(r.Uint32()&0x0F0F0000), 4+r.Intn(29))
	}

	for op := 0; op < 6000; op++ {
		switch r.Intn(4) {
		case 0, 1: // insert
			p := randomPrefix()
			e := Entry{NextHop: netaddr.AddrFromV4(r.Uint32()), Port: r.Intn(16)}
			ref.Insert(p, e)
			for _, eng := range others {
				eng.Insert(p, e)
			}
			inserted = append(inserted, p)
		case 2: // delete
			var p netaddr.Prefix
			if len(inserted) > 0 && r.Intn(4) != 0 {
				p = inserted[r.Intn(len(inserted))]
			} else {
				p = randomPrefix()
			}
			want := ref.Delete(p)
			for name, eng := range others {
				if got := eng.Delete(p); got != want {
					t.Fatalf("op %d: %s.Delete(%v) = %v, want %v", op, name, p, got, want)
				}
			}
		case 3: // lookup
			addr := netaddr.AddrFromV4(r.Uint32() & 0x0F0F00FF)
			wantE, wantOK := ref.Lookup(addr)
			for name, eng := range others {
				gotE, gotOK := eng.Lookup(addr)
				if gotOK != wantOK || gotE != wantE {
					t.Fatalf("op %d: %s.Lookup(%v) = %+v,%v; want %+v,%v",
						op, name, addr, gotE, gotOK, wantE, wantOK)
				}
			}
		}
		if op%500 == 0 {
			for name, eng := range others {
				if eng.Len() != ref.Len() {
					t.Fatalf("op %d: %s.Len = %d, want %d", op, name, eng.Len(), ref.Len())
				}
			}
		}
	}

	// Final exhaustive agreement check across the inserted population.
	for _, p := range inserted {
		wantE, wantOK := ref.LookupExact(p)
		for name, eng := range others {
			gotE, gotOK := eng.LookupExact(p)
			if gotOK != wantOK || gotE != wantE {
				t.Fatalf("final: %s.LookupExact(%v) = %+v,%v; want %+v,%v",
					name, p, gotE, gotOK, wantE, wantOK)
			}
		}
	}
}

func TestTableCounters(t *testing.T) {
	tbl := NewTable(nil)
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	tbl.Insert(p, Entry{Port: 1})
	tbl.Lookup(netaddr.MustParseAddr("10.1.1.1"))
	tbl.Lookup(netaddr.MustParseAddr("10.1.1.2"))
	tbl.Delete(p)
	if got := tbl.Updates(); got != 2 {
		t.Errorf("Updates = %d, want 2", got)
	}
	if got := tbl.Lookups(); got != 2 {
		t.Errorf("Lookups = %d, want 2", got)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d, want 0", tbl.Len())
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tbl := NewTable(NewPatricia())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			p := netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<12), 20)
			tbl.Insert(p, Entry{Port: i % 8})
			if i%3 == 0 {
				tbl.Delete(p)
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		tbl.Lookup(netaddr.AddrFromV4(uint32(i) << 12))
	}
	<-done
	tbl.Walk(func(netaddr.Prefix, Entry) bool { return true })
}

func TestPatriciaCompression(t *testing.T) {
	// Exercise split-node creation and cascading splice on delete.
	p := NewPatricia()
	a := netaddr.MustParsePrefix("10.0.0.0/24")
	b := netaddr.MustParsePrefix("10.0.1.0/24")
	c := netaddr.MustParsePrefix("10.0.0.0/16")
	p.Insert(a, Entry{Port: 1})
	p.Insert(b, Entry{Port: 2}) // forces a split node at /23
	p.Insert(c, Entry{Port: 3})
	if got, _ := p.Lookup(netaddr.MustParseAddr("10.0.0.1")); got.Port != 1 {
		t.Fatalf("port = %d, want 1", got.Port)
	}
	if !p.Delete(a) || !p.Delete(b) {
		t.Fatal("delete failed")
	}
	// The split node must be gone; /16 still answers.
	if got, ok := p.Lookup(netaddr.MustParseAddr("10.0.0.1")); !ok || got.Port != 3 {
		t.Fatalf("after deletes: %+v,%v", got, ok)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}
