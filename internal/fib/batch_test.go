package fib

import (
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
)

// randomOps builds a batch mixing inserts, replacements, and deletes over a
// small prefix pool so ops collide (replace-after-insert, delete-then-
// reinsert) within one batch.
func randomOps(rng *rand.Rand, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		p := netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(rng.Intn(64))<<20), 12+rng.Intn(4)*4)
		if rng.Intn(4) == 0 {
			ops[i] = Op{Prefix: p, Delete: true}
		} else {
			ops[i] = Op{Prefix: p, Entry: Entry{NextHop: netaddr.AddrFromV4(rng.Uint32() | 1), Port: rng.Intn(16)}}
		}
	}
	return ops
}

// newBatchTestEngine builds each named engine; "snapshot" is the
// SnapshotTable wrapper, whose method set matches Engine and whose
// per-commit publish path must preserve batch semantics too.
func newBatchTestEngine(t *testing.T, name string) Engine {
	if name == "snapshot" {
		return NewSnapshotTable(NewPoptrie())
	}
	eng, err := NewEngine(name)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestApplyEquivalentToSingles: for every engine, Apply(ops) must leave the
// table in exactly the state produced by the equivalent Insert/Delete
// sequence.
func TestApplyEquivalentToSingles(t *testing.T) {
	for _, name := range append(append([]string(nil), EngineNames...), "snapshot") {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for round := 0; round < 20; round++ {
				batched := newBatchTestEngine(t, name)
				single := newBatchTestEngine(t, name)
				// Pre-populate both identically so deletes have targets.
				seedOps := randomOps(rng, 100)
				for _, op := range seedOps {
					if !op.Delete {
						batched.Insert(op.Prefix, op.Entry)
						single.Insert(op.Prefix, op.Entry)
					}
				}
				ops := randomOps(rng, 150)
				batched.Apply(ops)
				for _, op := range ops {
					if op.Delete {
						single.Delete(op.Prefix)
					} else {
						single.Insert(op.Prefix, op.Entry)
					}
				}
				if batched.Len() != single.Len() {
					t.Fatalf("round %d: Len %d != %d", round, batched.Len(), single.Len())
				}
				single.Walk(func(p netaddr.Prefix, want Entry) bool {
					got, ok := batched.LookupExact(p)
					if !ok || got != want {
						t.Fatalf("round %d: %v = %v/%v, want %v", round, p, got, ok, want)
					}
					return true
				})
				// Spot-check LPM agreement on random addresses.
				for i := 0; i < 200; i++ {
					addr := netaddr.AddrFromV4(uint32(rng.Intn(64)) << 20)
					ge, gok := batched.Lookup(addr)
					we, wok := single.Lookup(addr)
					if gok != wok || ge != we {
						t.Fatalf("round %d: Lookup(%v) = %v/%v, want %v/%v", round, addr, ge, gok, we, wok)
					}
				}
			}
		})
	}
}

func TestTableApplyCountsBatches(t *testing.T) {
	tbl := NewTable(NewLinear())
	tbl.Apply(nil) // empty batch must not count
	ops := []Op{
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Entry: Entry{NextHop: netaddr.AddrFromV4(1), Port: 1}},
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Entry: Entry{NextHop: netaddr.AddrFromV4(2), Port: 2}},
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Delete: true},
	}
	tbl.Apply(ops)
	batches, total := tbl.BatchStats()
	if batches != 1 || total != 3 {
		t.Fatalf("BatchStats = %d, %d; want 1, 3", batches, total)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	if _, ok := tbl.LookupExact(netaddr.MustParsePrefix("10.1.0.0/16")); !ok {
		t.Fatal("surviving route missing")
	}
	if tbl.Updates() != 3 {
		t.Fatalf("Updates = %d, want 3", tbl.Updates())
	}
}

// TestLinearApplyDeleteReinsert targets the bulk path's tombstone logic:
// deleting a prefix and re-inserting it in the same batch must keep the
// final entry.
func TestLinearApplyDeleteReinsert(t *testing.T) {
	l := NewLinear()
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	l.Insert(p, Entry{NextHop: netaddr.AddrFromV4(1), Port: 1})
	l.Apply([]Op{
		{Prefix: p, Delete: true},
		{Prefix: p, Entry: Entry{NextHop: netaddr.AddrFromV4(9), Port: 9}},
		{Prefix: netaddr.MustParsePrefix("192.168.0.0/16"), Delete: true}, // absent: no-op
	})
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if e, ok := l.LookupExact(p); !ok || e.NextHop != netaddr.AddrFromV4(9) {
		t.Fatalf("entry = %v/%v, want NextHop 9", e, ok)
	}
}
