package fib_test

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
)

// lookupTableSize is the synthetic full-table size for the lookup
// benchmarks: 1M prefixes by default (a generation ahead of the paper's
// 244k-route table), overridable so the CI smoke run stays fast.
func lookupTableSize() int {
	if s := os.Getenv("BGPBENCH_LOOKUP_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1_000_000
}

var lookupCorpus struct {
	once  sync.Once
	ops   []fib.Op
	addrs []netaddr.Addr
}

// lookupWorkload generates (once per process) the synthetic table as a
// bulk-load batch plus a probe mix: mostly addresses inside installed
// prefixes with random host bits, with a slice of uniform random
// addresses for miss coverage.
func lookupWorkload() ([]fib.Op, []netaddr.Addr) {
	lookupCorpus.once.Do(func() {
		table := core.GenerateTable(core.TableGenConfig{N: lookupTableSize(), Seed: 5})
		ops := make([]fib.Op, len(table))
		for i, r := range table {
			ops[i] = fib.Op{Prefix: r.Prefix, Entry: fib.Entry{NextHop: netaddr.AddrFromV4(uint32(i | 1)), Port: i % 16}}
		}
		rng := rand.New(rand.NewSource(1))
		addrs := make([]netaddr.Addr, 8192)
		for i := range addrs {
			if i%4 == 3 {
				addrs[i] = netaddr.AddrFromV4(rng.Uint32())
				continue
			}
			p := table[rng.Intn(len(table))].Prefix
			addrs[i] = p.Host(uint64(rng.Uint32()))
		}
		lookupCorpus.ops, lookupCorpus.addrs = ops, addrs
	})
	return lookupCorpus.ops, lookupCorpus.addrs
}

var lookupCorpusV6 struct {
	once  sync.Once
	ops   []fib.Op
	addrs []netaddr.Addr
}

// lookupWorkloadV6 is the IPv6 counterpart of lookupWorkload: the same
// table size drawn from the IPv6 global-table length mix, probed with
// in-table addresses (random host bits) and uniform 2000::/3 misses.
func lookupWorkloadV6() ([]fib.Op, []netaddr.Addr) {
	lookupCorpusV6.once.Do(func() {
		table := core.GenerateTable(core.TableGenConfig{N: lookupTableSize(), Seed: 5, Family: netaddr.FamilyV6})
		ops := make([]fib.Op, len(table))
		for i, r := range table {
			ops[i] = fib.Op{Prefix: r.Prefix, Entry: fib.Entry{NextHop: netaddr.AddrFromV4(uint32(i | 1)), Port: i % 16}}
		}
		rng := rand.New(rand.NewSource(1))
		addrs := make([]netaddr.Addr, 8192)
		for i := range addrs {
			if i%4 == 3 {
				addrs[i] = netaddr.AddrFrom128(uint64(0x2000)<<48|rng.Uint64()>>16, rng.Uint64())
				continue
			}
			p := table[rng.Intn(len(table))].Prefix
			addrs[i] = p.Host(rng.Uint64())
		}
		lookupCorpusV6.ops, lookupCorpusV6.addrs = ops, addrs
	})
	return lookupCorpusV6.ops, lookupCorpusV6.addrs
}

// BenchmarkLookup measures single-threaded LPM cost per engine over the
// synthetic full table (BGPBENCH_LOOKUP_N prefixes, default 1M).
func BenchmarkLookup(b *testing.B) {
	ops, addrs := lookupWorkload()
	benchLookup(b, ops, addrs)
}

// BenchmarkLookupV6 is the same measurement over an IPv6 table: longer
// strides, deeper chunk chains, 128-bit keys.
func BenchmarkLookupV6(b *testing.B) {
	ops, addrs := lookupWorkloadV6()
	benchLookup(b, ops, addrs)
}

func benchLookup(b *testing.B, ops []fib.Op, addrs []netaddr.Addr) {
	for _, name := range fib.EngineNames {
		b.Run(name, func(b *testing.B) {
			eng, err := fib.NewEngine(name)
			if err != nil {
				b.Fatal(err)
			}
			eng.Apply(ops)
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				e, _ := eng.Lookup(addrs[i&(len(addrs)-1)])
				sink += e.Port
			}
			_ = sink
		})
	}
}

// BenchmarkLookupChurn measures parallel reader throughput while a
// writer commits 512-op delete+reinsert batches flat out. The RWMutex
// table stalls every reader for each commit; the snapshot table's
// readers only ever load the current epoch pointer, so their latency
// should not depend on the churn at all.
func BenchmarkLookupChurn(b *testing.B) {
	ops, addrs := lookupWorkload()
	cases := []struct {
		name string
		make func() fib.Shared
	}{
		{"rwmutex-patricia", func() fib.Shared { return fib.NewTable(fib.NewPatricia()) }},
		{"rwmutex-poptrie", func() fib.Shared { return fib.NewTable(fib.NewPoptrie()) }},
		{"snapshot-poptrie", func() fib.Shared { return fib.NewShared(fib.NewPoptrie()) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tbl := tc.make()
			tbl.Apply(ops)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				rng := rand.New(rand.NewSource(7))
				buf := make([]fib.Op, 0, 512)
				for {
					select {
					case <-stop:
						return
					default:
					}
					buf = buf[:0]
					for k := 0; k < 256; k++ {
						op := ops[rng.Intn(len(ops))]
						// Delete+reinsert in one batch: every published
						// epoch still holds the full table.
						buf = append(buf,
							fib.Op{Prefix: op.Prefix, Delete: true},
							fib.Op{Prefix: op.Prefix, Entry: op.Entry})
					}
					tbl.Apply(buf)
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				var sink int
				for pb.Next() {
					e, _ := tbl.Lookup(addrs[i&(len(addrs)-1)])
					sink += e.Port
					i++
				}
				_ = sink
			})
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
