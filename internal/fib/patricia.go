package fib

import "bgpbench/internal/netaddr"

// Patricia is a path-compressed binary trie (radix tree) with one root
// per address family: internal single-child chains are collapsed, so the
// node count is O(number of routes) and lookups take at most one branch
// per stored prefix on the path. This is the default engine for the
// router's FIB.
type Patricia struct {
	roots [2]*pNode // indexed by netaddr.Family
	n     int
}

type pNode struct {
	prefix netaddr.Prefix
	entry  Entry
	has    bool
	child  [2]*pNode
}

// NewPatricia returns an empty path-compressed trie.
func NewPatricia() *Patricia {
	return &Patricia{roots: [2]*pNode{
		{prefix: netaddr.PrefixFrom(netaddr.ZeroAddr(netaddr.FamilyV4), 0)},
		{prefix: netaddr.PrefixFrom(netaddr.ZeroAddr(netaddr.FamilyV6), 0)},
	}}
}

// commonPrefixLen returns the number of leading bits shared by a and b,
// capped at maxLen.
func commonPrefixLen(a, b netaddr.Addr, maxLen int) int {
	n := a.CommonPrefixLen(b)
	if n > maxLen {
		n = maxLen
	}
	return n
}

// Insert adds or replaces the entry for a prefix.
func (t *Patricia) Insert(p netaddr.Prefix, e Entry) {
	n := t.roots[p.Family()]
	for {
		if p == n.prefix {
			if !n.has {
				t.n++
			}
			n.entry, n.has = e, true
			return
		}
		bit := p.Addr().Bit(n.prefix.Len())
		c := n.child[bit]
		if c == nil {
			n.child[bit] = &pNode{prefix: p, entry: e, has: true}
			t.n++
			return
		}
		maxL := p.Len()
		if c.prefix.Len() < maxL {
			maxL = c.prefix.Len()
		}
		cpl := commonPrefixLen(p.Addr(), c.prefix.Addr(), maxL)
		switch {
		case cpl == c.prefix.Len():
			// c.prefix is a (proper) prefix of p: descend.
			n = c
		case cpl == p.Len():
			// p is a proper prefix of c.prefix: splice p above c.
			nn := &pNode{prefix: p, entry: e, has: true}
			nn.child[c.prefix.Addr().Bit(p.Len())] = c
			n.child[bit] = nn
			t.n++
			return
		default:
			// Paths diverge at cpl: create a forwarding-only split node.
			mid := &pNode{prefix: netaddr.PrefixFrom(p.Addr(), cpl)}
			mid.child[c.prefix.Addr().Bit(cpl)] = c
			mid.child[p.Addr().Bit(cpl)] = &pNode{prefix: p, entry: e, has: true}
			n.child[bit] = mid
			t.n++
			return
		}
	}
}

// Delete removes a prefix, splicing out structural nodes that become
// redundant.
func (t *Patricia) Delete(p netaddr.Prefix) bool {
	root := t.roots[p.Family()]
	var parent *pNode
	parentBit := 0
	n := root
	for n != nil && n.prefix != p {
		if n.prefix.Len() >= p.Len() || !n.prefix.Contains(p.Addr()) {
			return false
		}
		parent = n
		parentBit = p.Addr().Bit(n.prefix.Len())
		n = n.child[parentBit]
	}
	if n == nil || !n.has {
		return false
	}
	n.has = false
	t.n--
	t.compress(root, parent, parentBit, n)
	return true
}

// compress removes or splices a routeless node n (child parentBit of
// parent) and then re-examines the parent, which may itself have become a
// redundant split node.
func (t *Patricia) compress(root, parent *pNode, parentBit int, n *pNode) {
	for {
		if n == root || n.has {
			return
		}
		switch {
		case n.child[0] == nil && n.child[1] == nil:
			parent.child[parentBit] = nil
		case n.child[0] != nil && n.child[1] != nil:
			return // still a necessary split point
		default:
			c := n.child[0]
			if c == nil {
				c = n.child[1]
			}
			parent.child[parentBit] = c
		}
		// The parent may now be a routeless node with fewer than two
		// children; walk up one level. Finding the grandparent needs a
		// search from the root, but splicing cascades are rare and short.
		n = parent
		parent, parentBit = t.findParent(root, n)
		if parent == nil {
			return
		}
	}
}

// findParent locates the parent of n, or nil for the root.
func (t *Patricia) findParent(root, n *pNode) (*pNode, int) {
	if n == root {
		return nil, 0
	}
	cur := root
	for {
		bit := n.prefix.Addr().Bit(cur.prefix.Len())
		c := cur.child[bit]
		if c == nil {
			return nil, 0
		}
		if c == n {
			return cur, bit
		}
		cur = c
	}
}

// Lookup descends while node prefixes contain addr, returning the deepest
// entry seen.
func (t *Patricia) Lookup(addr netaddr.Addr) (Entry, bool) {
	var best Entry
	found := false
	bits := addr.Bits()
	n := t.roots[addr.Family()]
	for n != nil && n.prefix.Contains(addr) {
		if n.has {
			best, found = n.entry, true
		}
		if n.prefix.Len() == bits {
			break
		}
		n = n.child[addr.Bit(n.prefix.Len())]
	}
	return best, found
}

// LookupExact returns the entry stored for exactly this prefix.
func (t *Patricia) LookupExact(p netaddr.Prefix) (Entry, bool) {
	n := t.roots[p.Family()]
	for n != nil {
		if n.prefix == p {
			if n.has {
				return n.entry, true
			}
			return Entry{}, false
		}
		if n.prefix.Len() >= p.Len() || !n.prefix.Contains(p.Addr()) {
			return Entry{}, false
		}
		n = n.child[p.Addr().Bit(n.prefix.Len())]
	}
	return Entry{}, false
}

// Len returns the number of installed prefixes.
func (t *Patricia) Len() int { return t.n }

// Walk visits entries in address order, IPv4 before IPv6.
func (t *Patricia) Walk(fn func(netaddr.Prefix, Entry) bool) {
	for _, f := range netaddr.Families {
		if !t.walk(t.roots[f], fn) {
			return
		}
	}
}

func (t *Patricia) walk(n *pNode, fn func(netaddr.Prefix, Entry) bool) bool {
	if n == nil {
		return true
	}
	if n.has {
		if !fn(n.prefix, n.entry) {
			return false
		}
	}
	return t.walk(n.child[0], fn) && t.walk(n.child[1], fn)
}

// Apply performs the batch as ordered single ops; the path-compressed trie
// has no cheaper bulk restructuring.
func (p *Patricia) Apply(ops []Op) { applyOps(p, ops) }
