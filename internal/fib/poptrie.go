package fib

import (
	"math/bits"
	"sort"

	"bgpbench/internal/netaddr"
)

// Poptrie is a level-compressed multibit trie in the poptrie/DXR family
// (Asai & Ohara, SIGCOMM 2015): a direct-index root stride consumes the
// top 16 address bits, and the remaining bits are resolved by nodes whose
// children are located with a popcount over a 64-bit bitmap instead of
// pointers, so a full-table lookup touches a handful of cache lines.
//
// Layout (per address family; IPv4 and IPv6 have separate directories):
//
//	bits[0:16]   two-level root directory: pages[slot>>8][slot&0xFF]
//	             selects a chunk (nil = no route of length >= 16 there)
//	bits[16:32]  per-chunk trie with strides 6,6,4; each node packs a
//	             64-bit child bitmap (vec) and leaf-run bitmap (leafvec)
//	bits[32:]    IPv6 routes longer than /32 descend through chained
//	             chunks, one per further 16-bit window, found via a small
//	             per-chunk child map; lookups try the deepest chain first
//	             and fall back outward (longest-prefix order)
//	routes with length < 16 live in an expanded per-slot side table
//	             consulted only when the chunk walk finds nothing longer
//
// The structure is persistent by construction: chunks (including their
// chained children) are immutable once built — every mutation compiles a
// fresh chunk chain from its route list — and Snapshot seals the root
// directory pages and the short-route views so later writes copy before
// mutating. That makes Snapshot an O(pages) pointer copy, which is what
// SnapshotTable relies on for its per-commit epoch publication.
//
// Like the other engines, Poptrie itself is single-goroutine; wrap it in
// a SnapshotTable (or Table) for shared use.
type Poptrie struct {
	fams [2]popFam // indexed by netaddr.Family
	n    int
}

// popFam is the per-family state: root directory, copy-on-write flags,
// and the short-route view.
type popFam struct {
	pages       [rootPages]*rootPage
	pageShared  [rootPages]bool // page is referenced by a snapshot; copy before write
	short       *shortView
	shortShared bool // short view is referenced by a snapshot

	// shortIdx indexes short.routes by prefix; write-side only, never
	// shared with snapshots.
	shortIdx map[netaddr.Prefix]int
}

const (
	chunkBits = 16 // root stride: one chunk per /16
	pageBits  = 8
	rootPages = 1 << pageBits
	pageSize  = 1 << pageBits
	pageMask  = pageSize - 1
	lowMask   = 1<<chunkBits - 1
)

// popStrides are the branch widths of the levels below the /16 root
// stride; they sum to chunkBits.
var popStrides = [3]int{6, 6, 4}

// rootPage is one 256-slot page of the root directory. Pages are copied
// on first write after a Snapshot, so a commit touching k distinct pages
// copies k*2KB instead of the whole 512KB directory.
type rootPage [pageSize]*popChunk

// popRoute is one installed route, owned by a chunk (length >= 16) or by
// the short view (length < 16).
type popRoute struct {
	prefix netaddr.Prefix
	entry  Entry
}

// popLeaf is a lookup outcome: the winning entry, or a miss.
type popLeaf struct {
	entry Entry
	ok    bool
}

// popNode is one trie node. Branch b has a child iff vec bit b is set;
// its index is cbase + popcount(vec below b). Otherwise branch b resolves
// to a leaf: consecutive branches sharing a result are stored once
// (leafvec marks run starts), at leaves[lbase + popcount(leafvec through
// b) - 1].
type popNode struct {
	vec     uint64
	leafvec uint64
	cbase   uint32
	lbase   uint32
}

// popChunk resolves the 16-bit window starting at bit offset base. It is
// immutable after buildChunk returns: routes is the authoritative route
// list the next rebuild starts from (for a top-level chunk it includes
// the routes of all chained children), nodes/leaves are the compiled
// form, and children maps a fully-matched window value to the chunk for
// the next 16 bits (IPv6 routes longer than base+16).
type popChunk struct {
	routes   []popRoute
	nodes    []popNode
	leaves   []popLeaf
	children map[uint32]*popChunk
	base     int32 // bit offset of the window this chunk resolves
}

// shortView resolves routes shorter than /16 via a fully expanded
// per-slot table: expanded[slot] is 1+index into res of the longest
// short route covering that slot, 0 for none. The view is immutable while
// shared with a snapshot; the writer clones it before the next short
// mutation.
type shortView struct {
	expanded []uint32
	res      []popRoute // value table referenced by expanded; may hold dead entries
	routes   []popRoute // all installed short routes, unordered
}

// NewPoptrie returns an empty poptrie.
func NewPoptrie() *Poptrie {
	t := &Poptrie{}
	for f := range t.fams {
		t.fams[f].short = &shortView{expanded: make([]uint32, 1<<chunkBits)}
		t.fams[f].shortIdx = make(map[netaddr.Prefix]int)
	}
	return t
}

// slot16 returns the top 16 address bits, the root directory index. The
// left-justified netaddr layout makes this family-uniform.
func slot16(a netaddr.Addr) uint32 {
	return uint32(a.Hi() >> 48)
}

// window16 extracts the 16-bit window starting at bit offset base (a
// multiple of 16, so windows never straddle the hi/lo boundary).
func window16(a netaddr.Addr, base int) uint32 {
	if base < 64 {
		return uint32(a.Hi()>>(48-base)) & lowMask
	}
	return uint32(a.Lo()>>(112-base)) & lowMask
}

// slotAddr reconstructs the address whose top 16 bits are slot, for the
// given family.
func slotAddr(f netaddr.Family, slot uint32) netaddr.Addr {
	if f == netaddr.FamilyV4 {
		return netaddr.AddrFromV4(slot << chunkBits)
	}
	return netaddr.AddrFrom128(uint64(slot)<<48, 0)
}

// Insert adds or replaces the entry for a prefix.
func (t *Poptrie) Insert(p netaddr.Prefix, e Entry) {
	fm := &t.fams[p.Family()]
	if p.Len() < chunkBits {
		t.insertShort(fm, p, e)
		return
	}
	slot := slot16(p.Addr())
	routes, replaced := routesWith(fm.chunkRoutes(slot), p, e)
	if !replaced {
		t.n++
	}
	fm.setChunk(slot, routes)
}

// Delete removes a prefix, reporting whether it was present.
func (t *Poptrie) Delete(p netaddr.Prefix) bool {
	fm := &t.fams[p.Family()]
	if p.Len() < chunkBits {
		return t.deleteShort(fm, p)
	}
	slot := slot16(p.Addr())
	routes, removed := routesWithout(fm.chunkRoutes(slot), p)
	if !removed {
		return false
	}
	t.n--
	fm.setChunk(slot, routes)
	return true
}

// popSlotKey distinguishes staged per-slot batches across families.
type popSlotKey struct {
	fam  netaddr.Family
	slot uint32
}

// Apply commits a batch, rebuilding each dirty chunk once instead of once
// per op.
func (t *Poptrie) Apply(ops []Op) {
	staged := make(map[popSlotKey][]popRoute)
	for _, op := range ops {
		fm := &t.fams[op.Prefix.Family()]
		if op.Prefix.Len() < chunkBits {
			if op.Delete {
				t.deleteShort(fm, op.Prefix)
			} else {
				t.insertShort(fm, op.Prefix, op.Entry)
			}
			continue
		}
		key := popSlotKey{fam: op.Prefix.Family(), slot: slot16(op.Prefix.Addr())}
		routes, ok := staged[key]
		if !ok {
			routes = append([]popRoute(nil), fm.chunkRoutes(key.slot)...)
		}
		if op.Delete {
			var removed bool
			routes, removed = dropRoute(routes, op.Prefix)
			if removed {
				t.n--
			}
		} else {
			var replaced bool
			routes, replaced = putRoute(routes, op.Prefix, op.Entry)
			if !replaced {
				t.n++
			}
		}
		staged[key] = routes
	}
	for key, routes := range staged {
		t.fams[key.fam].setChunk(key.slot, routes)
	}
}

// Lookup returns the entry of the longest prefix containing addr.
func (t *Poptrie) Lookup(addr netaddr.Addr) (Entry, bool) {
	fm := &t.fams[addr.Family()]
	return lookupIn(&fm.pages, fm.short, addr)
}

// LookupExact returns the entry stored for exactly this prefix.
func (t *Poptrie) LookupExact(p netaddr.Prefix) (Entry, bool) {
	fm := &t.fams[p.Family()]
	if p.Len() < chunkBits {
		if i, ok := fm.shortIdx[p]; ok {
			return fm.short.routes[i].entry, true
		}
		return Entry{}, false
	}
	return chunkExact(fm.chunkAt(slot16(p.Addr())), p)
}

// Len returns the number of installed prefixes.
func (t *Poptrie) Len() int { return t.n }

// Walk visits all entries (per family — IPv4 first — short routes, then
// chunks in address order) until fn returns false.
func (t *Poptrie) Walk(fn func(netaddr.Prefix, Entry) bool) {
	for f := range t.fams {
		if !walkIn(&t.fams[f].pages, t.fams[f].short, fn) {
			return
		}
	}
}

// Snapshot publishes an immutable point-in-time view. It copies only the
// root directories; pages, chunk chains, and the short views are shared
// and sealed, so the writer's next mutation of each copies it first
// (copy-on-write at page granularity).
func (t *Poptrie) Snapshot() Reader {
	s := &poptrieSnapshot{n: t.n}
	for f := range t.fams {
		fm := &t.fams[f]
		s.pages[f] = fm.pages
		s.shorts[f] = fm.short
		for i, page := range fm.pages {
			if page != nil {
				fm.pageShared[i] = true
			}
		}
		fm.shortShared = true
	}
	return s
}

// poptrieSnapshot is a frozen view of a Poptrie. All reachable state is
// immutable (enforced by the snapshotimmut lint), so methods are safe for
// arbitrary concurrent use.
type poptrieSnapshot struct {
	pages  [2][rootPages]*rootPage
	shorts [2]*shortView
	n      int
}

// Lookup returns the entry of the longest prefix containing addr.
func (s *poptrieSnapshot) Lookup(addr netaddr.Addr) (Entry, bool) {
	//bgplint:allow(snapshotimmut) reason=read-only interior pointer so the shared read path avoids copying the 2KB directory
	return lookupIn(&s.pages[addr.Family()], s.shorts[addr.Family()], addr)
}

// LookupExact returns the entry stored for exactly this prefix. Short
// prefixes scan the frozen route list: exact queries are a control-plane
// convenience, not the hot path.
func (s *poptrieSnapshot) LookupExact(p netaddr.Prefix) (Entry, bool) {
	f := p.Family()
	if p.Len() < chunkBits {
		for _, r := range s.shorts[f].routes {
			if r.prefix == p {
				return r.entry, true
			}
		}
		return Entry{}, false
	}
	slot := slot16(p.Addr())
	var c *popChunk
	if page := s.pages[f][slot>>pageBits]; page != nil {
		c = page[slot&pageMask]
	}
	return chunkExact(c, p)
}

// Len returns the number of prefixes installed when the snapshot was
// taken.
func (s *poptrieSnapshot) Len() int { return s.n }

// Walk visits all entries in the snapshot until fn returns false.
func (s *poptrieSnapshot) Walk(fn func(netaddr.Prefix, Entry) bool) {
	for f := range s.pages {
		//bgplint:allow(snapshotimmut) reason=read-only interior pointer so the shared read path avoids copying the 2KB directory
		if !walkIn(&s.pages[f], s.shorts[f], fn) {
			return
		}
	}
}

// lookupIn is the shared read path: resolve the chunk for addr's top /16
// and walk it (descending through chained chunks for IPv6); fall back to
// the expanded short-route table on a miss (all chunk routes are longer
// than all short routes, so order is correct).
func lookupIn(pages *[rootPages]*rootPage, short *shortView, addr netaddr.Addr) (Entry, bool) {
	slot := slot16(addr)
	if page := pages[slot>>pageBits]; page != nil {
		if c := page[slot&pageMask]; c != nil {
			if lf := chunkChainLookup(c, addr); lf.ok {
				return lf.entry, true
			}
		}
	}
	if ri := short.expanded[slot]; ri != 0 {
		return short.res[ri-1].entry, true
	}
	return Entry{}, false
}

// chunkChainLookup resolves addr within a chunk chain: the deepest
// matching chained chunk is consulted first, falling back outward so
// longer prefixes win. IPv4 chunks have no children, so the hot path is
// one nil check on top of the popcount walk.
func chunkChainLookup(c *popChunk, addr netaddr.Addr) popLeaf {
	low := window16(addr, int(c.base))
	if c.children != nil {
		if child, ok := c.children[low]; ok {
			if lf := chunkChainLookup(child, addr); lf.ok {
				return lf
			}
		}
	}
	return c.lookup(low)
}

func walkIn(pages *[rootPages]*rootPage, short *shortView, fn func(netaddr.Prefix, Entry) bool) bool {
	for _, r := range short.routes {
		if !fn(r.prefix, r.entry) {
			return false
		}
	}
	for _, page := range pages {
		if page == nil {
			continue
		}
		for _, c := range page {
			if c == nil {
				continue
			}
			for _, r := range c.routes {
				if !fn(r.prefix, r.entry) {
					return false
				}
			}
		}
	}
	return true
}

func chunkExact(c *popChunk, p netaddr.Prefix) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	for _, r := range c.routes {
		if r.prefix == p {
			return r.entry, true
		}
	}
	return Entry{}, false
}

// chunkAt fetches the chunk for a top-level slot without claiming
// ownership.
func (fm *popFam) chunkAt(slot uint32) *popChunk {
	page := fm.pages[slot>>pageBits]
	if page == nil {
		return nil
	}
	return page[slot&pageMask]
}

// chunkRoutes returns the authoritative route list for a slot (shared;
// callers must copy before mutating).
func (fm *popFam) chunkRoutes(slot uint32) []popRoute {
	if c := fm.chunkAt(slot); c != nil {
		return c.routes
	}
	return nil
}

// setChunk compiles routes into a fresh chunk chain and installs it,
// copying the directory page first if a snapshot still references it.
func (fm *popFam) setChunk(slot uint32, routes []popRoute) {
	pi := slot >> pageBits
	page := fm.pages[pi]
	switch {
	case page == nil:
		if len(routes) == 0 {
			return
		}
		page = new(rootPage)
		fm.pages[pi] = page
	case fm.pageShared[pi]:
		cp := *page
		page = &cp
		fm.pages[pi] = page
		fm.pageShared[pi] = false
	}
	page.set(slot&pageMask, buildChunk(routes, chunkBits))
}

// set installs a chunk into an owned (unshared) page.
func (p *rootPage) set(i uint32, c *popChunk) { p[i] = c }

// routesWith returns a fresh route list with p set to e; the input list
// is never modified (it may belong to a published chunk).
func routesWith(routes []popRoute, p netaddr.Prefix, e Entry) ([]popRoute, bool) {
	out := make([]popRoute, len(routes), len(routes)+1)
	copy(out, routes)
	return putRoute(out, p, e)
}

// routesWithout returns a fresh route list with p removed.
func routesWithout(routes []popRoute, p netaddr.Prefix) ([]popRoute, bool) {
	out := append([]popRoute(nil), routes...)
	return dropRoute(out, p)
}

// putRoute replaces or appends in place (the caller owns the slice).
func putRoute(routes []popRoute, p netaddr.Prefix, e Entry) ([]popRoute, bool) {
	for i := range routes {
		if routes[i].prefix == p {
			routes[i].entry = e
			return routes, true
		}
	}
	return append(routes, popRoute{prefix: p, entry: e}), false
}

// dropRoute removes in place (the caller owns the slice).
func dropRoute(routes []popRoute, p netaddr.Prefix) ([]popRoute, bool) {
	for i := range routes {
		if routes[i].prefix == p {
			routes[i] = routes[len(routes)-1]
			return routes[:len(routes)-1], true
		}
	}
	return routes, false
}

// buildChunk compiles a route list into popcount-indexed node and leaf
// arrays for the 16-bit window at baseBits, recursively compiling chained
// child chunks for routes extending past baseBits+16 (IPv6). The arrays
// are always freshly allocated: published snapshots may still reference
// the previous chunk.
func buildChunk(routes []popRoute, baseBits int) *popChunk {
	if len(routes) == 0 {
		return nil
	}
	c := &popChunk{routes: routes, base: int32(baseBits)}
	var inherited popLeaf
	scope := make([]popRoute, 0, len(routes))
	var deepGroups map[uint32][]popRoute
	for _, r := range routes {
		relLen := r.prefix.Len() - baseBits
		switch {
		case relLen <= 0:
			inherited = popLeaf{entry: r.entry, ok: true}
		case relLen <= chunkBits:
			scope = append(scope, r)
		default:
			w := window16(r.prefix.Addr(), baseBits)
			if deepGroups == nil {
				deepGroups = make(map[uint32][]popRoute)
			}
			deepGroups[w] = append(deepGroups[w], r)
		}
	}
	c.nodes = make([]popNode, 1, 1+len(scope))
	c.buildInto(0, 0, scope, inherited)
	if deepGroups != nil {
		c.children = make(map[uint32]*popChunk, len(deepGroups))
		for w, grp := range deepGroups {
			c.children[w] = buildChunk(grp, baseBits+chunkBits)
		}
	}
	return c
}

// buildInto fills node ni, which resolves branches after bitsDone bits of
// the chunk's 16-bit window have been consumed. scope holds the routes
// longer than base+bitsDone that terminate within this window and reach
// this node; inherited is the best route already matched on the way down.
func (c *popChunk) buildInto(ni, bitsDone int, scope []popRoute, inherited popLeaf) {
	w := popStrides[bitsDone/6]
	shift := uint(chunkBits - bitsDone - w)
	branches := 1 << w

	type childWork struct {
		scope []popRoute
		best  popLeaf
	}
	var (
		vec, leafvec uint64
		children     []childWork
		prev         popLeaf
		prevIsLeaf   bool
	)
	lbase := uint32(len(c.leaves))
	for b := 0; b < branches; b++ {
		best, bestLen := inherited, 0
		var deeper []popRoute
		for _, r := range scope {
			rlen := r.prefix.Len() - int(c.base)
			rlow := window16(r.prefix.Addr(), int(c.base))
			if rlen > bitsDone+w {
				// Longer than this level resolves: branch window match
				// means the route needs a child under b.
				if int(rlow>>shift)&(branches-1) == b {
					deeper = append(deeper, r)
				}
				continue
			}
			// Route terminates at this level: it covers branch b iff b's
			// top k bits equal the route's k fixed bits in the window.
			k := rlen - bitsDone
			if b>>(w-k) == int(rlow>>(chunkBits-rlen))&(1<<k-1) && rlen > bestLen {
				best, bestLen = popLeaf{entry: r.entry, ok: true}, rlen
			}
		}
		if len(deeper) > 0 {
			vec |= 1 << b
			children = append(children, childWork{scope: deeper, best: best})
			prevIsLeaf = false
			continue
		}
		// Leaf-run compression: only run starts occupy a leaves slot.
		if !prevIsLeaf || best != prev {
			leafvec |= 1 << b
			c.leaves = append(c.leaves, best)
		}
		prev, prevIsLeaf = best, true
	}
	cbase := uint32(len(c.nodes))
	for range children {
		c.nodes = append(c.nodes, popNode{})
	}
	c.nodes[ni] = popNode{vec: vec, leafvec: leafvec, cbase: cbase, lbase: lbase}
	for i, cw := range children {
		c.buildInto(int(cbase)+i, bitsDone+w, cw.scope, cw.best)
	}
}

// lookup resolves the chunk's 16-bit window value within the compiled
// trie.
func (c *popChunk) lookup(low uint32) popLeaf {
	ni := uint32(0)
	bitsDone := 0
	for level := 0; ; level++ {
		w := popStrides[level]
		b := (low >> uint(chunkBits-bitsDone-w)) & uint32(1<<w-1)
		n := c.nodes[ni]
		bit := uint64(1) << b
		if n.vec&bit != 0 {
			ni = n.cbase + uint32(bits.OnesCount64(n.vec&(bit-1)))
			bitsDone += w
			continue
		}
		run := bits.OnesCount64(n.leafvec & (bit | (bit - 1)))
		if run == 0 {
			return popLeaf{}
		}
		return c.leaves[n.lbase+uint32(run-1)]
	}
}

// ownShort returns the family's short view, cloning it first if a
// snapshot still references it.
func (fm *popFam) ownShort() *shortView {
	if !fm.shortShared {
		return fm.short
	}
	old := fm.short
	fm.short = &shortView{
		expanded: append([]uint32(nil), old.expanded...),
		res:      append([]popRoute(nil), old.res...),
		routes:   append([]popRoute(nil), old.routes...),
	}
	fm.shortShared = false
	return fm.short
}

func (t *Poptrie) insertShort(fm *popFam, p netaddr.Prefix, e Entry) {
	sv := fm.ownShort()
	r := popRoute{prefix: p, entry: e}
	if i, ok := fm.shortIdx[p]; ok {
		sv.setRoute(i, r)
	} else {
		fm.shortIdx[p] = len(sv.routes)
		sv.appendRoute(r)
		t.n++
	}
	sv.stamp(r)
	maybeCompactShort(sv)
}

func (t *Poptrie) deleteShort(fm *popFam, p netaddr.Prefix) bool {
	i, ok := fm.shortIdx[p]
	if !ok {
		return false
	}
	sv := fm.ownShort()
	last := len(sv.routes) - 1
	sv.setRoute(i, sv.routes[last])
	fm.shortIdx[sv.routes[i].prefix] = i
	sv.truncRoutes(last)
	delete(fm.shortIdx, p)
	t.n--

	// Recompute every slot where p had been the winner. Adjacent slots
	// usually share the new winner, so memoize the last result.
	base := slot16(p.Addr())
	count := uint32(1) << (chunkBits - p.Len())
	var memo popRoute
	var memoRi uint32
	for s := base; s < base+count; s++ {
		cur := sv.expanded[s]
		if cur == 0 || sv.res[cur-1].prefix != p {
			continue
		}
		ri := uint32(0)
		if r, ok := fm.bestShortFor(p.Family(), s); ok {
			if memoRi != 0 && memo == r {
				ri = memoRi
			} else {
				ri = sv.appendRes(r)
				memo, memoRi = r, ri
			}
		}
		sv.setExpanded(s, ri)
	}
	maybeCompactShort(sv)
	return true
}

// bestShortFor probes the installed short routes longest-first for the
// winner at a top-level slot.
func (fm *popFam) bestShortFor(f netaddr.Family, slot uint32) (popRoute, bool) {
	addr := slotAddr(f, slot)
	for l := chunkBits - 1; l >= 0; l-- {
		if i, ok := fm.shortIdx[netaddr.PrefixFrom(addr, l)]; ok {
			return fm.short.routes[i], true
		}
	}
	return popRoute{}, false
}

// maybeCompactShort rebuilds the expanded table when churn has left too
// many dead res entries behind.
func maybeCompactShort(sv *shortView) {
	if len(sv.res) > 2*len(sv.routes)+64 {
		sv.rebuild()
	}
}

// stamp records r in res and writes it over every slot it covers where no
// longer route already wins. Equal length means the same prefix (distinct
// same-length prefixes cover disjoint slots), i.e. a replace.
func (sv *shortView) stamp(r popRoute) {
	ri := sv.appendRes(r)
	l := r.prefix.Len()
	base := slot16(r.prefix.Addr())
	count := uint32(1) << (chunkBits - l)
	for s := base; s < base+count; s++ {
		cur := sv.expanded[s]
		if cur == 0 || sv.res[cur-1].prefix.Len() <= l {
			sv.expanded[s] = ri
		}
	}
}

// rebuild recomputes expanded/res from the route list: stamping in
// ascending length order makes the longest covering route win every slot.
func (sv *shortView) rebuild() {
	for i := range sv.expanded {
		sv.expanded[i] = 0
	}
	sv.res = sv.res[:0]
	byLen := append([]popRoute(nil), sv.routes...)
	sort.Slice(byLen, func(i, j int) bool { return byLen[i].prefix.Len() < byLen[j].prefix.Len() })
	for _, r := range byLen {
		sv.stamp(r)
	}
}

func (sv *shortView) setRoute(i int, r popRoute) { sv.routes[i] = r }
func (sv *shortView) appendRoute(r popRoute)     { sv.routes = append(sv.routes, r) }
func (sv *shortView) truncRoutes(n int)          { sv.routes = sv.routes[:n] }
func (sv *shortView) setExpanded(s, ri uint32)   { sv.expanded[s] = ri }
func (sv *shortView) appendRes(r popRoute) uint32 {
	sv.res = append(sv.res, r)
	return uint32(len(sv.res))
}
