package fib

import (
	"math/bits"
	"sort"

	"bgpbench/internal/netaddr"
)

// Poptrie is a level-compressed multibit trie in the poptrie/DXR family
// (Asai & Ohara, SIGCOMM 2015): a direct-index root stride consumes the
// top 16 address bits, and the remaining bits are resolved by nodes whose
// children are located with a popcount over a 64-bit bitmap instead of
// pointers, so a full-table lookup touches a handful of cache lines.
//
// Layout:
//
//	addr[31:16]  two-level root directory: pages[addr>>24][addr>>16 & 0xFF]
//	             selects a chunk (nil = no route of length >= 16 there)
//	addr[15:0]   per-chunk trie with strides 6,6,4; each node packs a
//	             64-bit child bitmap (vec) and leaf-run bitmap (leafvec)
//	routes with length < 16 live in an expanded per-/16-slot side table
//	             consulted only when the chunk walk finds nothing longer
//
// The structure is persistent by construction: chunks are immutable once
// built (every mutation compiles a fresh chunk from its route list), and
// Snapshot seals the root directory pages and the short-route view so
// later writes copy before mutating. That makes Snapshot an O(pages)
// pointer copy, which is what SnapshotTable relies on for its per-commit
// epoch publication.
//
// Like the other engines, Poptrie itself is single-goroutine; wrap it in
// a SnapshotTable (or Table) for shared use.
type Poptrie struct {
	pages       [rootPages]*rootPage
	pageShared  [rootPages]bool // page is referenced by a snapshot; copy before write
	short       *shortView
	shortShared bool // short view is referenced by a snapshot

	// shortIdx indexes short.routes by prefix; write-side only, never
	// shared with snapshots.
	shortIdx map[netaddr.Prefix]int
	n        int
}

const (
	chunkBits = 16 // root stride: one chunk per /16
	pageBits  = 8
	rootPages = 1 << pageBits
	pageSize  = 1 << pageBits
	pageMask  = pageSize - 1
	lowMask   = 1<<chunkBits - 1
)

// popStrides are the branch widths of the levels below the /16 root
// stride; they sum to chunkBits.
var popStrides = [3]int{6, 6, 4}

// rootPage is one 256-slot page of the root directory. Pages are copied
// on first write after a Snapshot, so a commit touching k distinct pages
// copies k*2KB instead of the whole 512KB directory.
type rootPage [pageSize]*popChunk

// popRoute is one installed route, owned by a chunk (length >= 16) or by
// the short view (length < 16).
type popRoute struct {
	prefix netaddr.Prefix
	entry  Entry
}

// popLeaf is a lookup outcome: the winning entry, or a miss.
type popLeaf struct {
	entry Entry
	ok    bool
}

// popNode is one trie node. Branch b has a child iff vec bit b is set;
// its index is cbase + popcount(vec below b). Otherwise branch b resolves
// to a leaf: consecutive branches sharing a result are stored once
// (leafvec marks run starts), at leaves[lbase + popcount(leafvec through
// b) - 1].
type popNode struct {
	vec     uint64
	leafvec uint64
	cbase   uint32
	lbase   uint32
}

// popChunk resolves the low 16 bits for one /16 of address space. It is
// immutable after buildChunk returns: routes is the authoritative route
// list the next rebuild starts from, nodes/leaves are the compiled form.
type popChunk struct {
	routes []popRoute
	nodes  []popNode
	leaves []popLeaf
}

// shortView resolves routes shorter than /16 via a fully expanded
// per-/16-slot table: expanded[slot] is 1+index into res of the longest
// short route covering that slot, 0 for none. The view is immutable while
// shared with a snapshot; the writer clones it before the next short
// mutation.
type shortView struct {
	expanded []uint32
	res      []popRoute // value table referenced by expanded; may hold dead entries
	routes   []popRoute // all installed short routes, unordered
}

// NewPoptrie returns an empty poptrie.
func NewPoptrie() *Poptrie {
	return &Poptrie{
		short:    &shortView{expanded: make([]uint32, 1<<chunkBits)},
		shortIdx: make(map[netaddr.Prefix]int),
	}
}

// Insert adds or replaces the entry for a prefix.
func (t *Poptrie) Insert(p netaddr.Prefix, e Entry) {
	if p.Len() < chunkBits {
		t.insertShort(p, e)
		return
	}
	slot := uint32(p.Addr()) >> chunkBits
	routes, replaced := routesWith(t.chunkRoutes(slot), p, e)
	if !replaced {
		t.n++
	}
	t.setChunk(slot, routes)
}

// Delete removes a prefix, reporting whether it was present.
func (t *Poptrie) Delete(p netaddr.Prefix) bool {
	if p.Len() < chunkBits {
		return t.deleteShort(p)
	}
	slot := uint32(p.Addr()) >> chunkBits
	routes, removed := routesWithout(t.chunkRoutes(slot), p)
	if !removed {
		return false
	}
	t.n--
	t.setChunk(slot, routes)
	return true
}

// Apply commits a batch, rebuilding each dirty chunk once instead of once
// per op.
func (t *Poptrie) Apply(ops []Op) {
	staged := make(map[uint32][]popRoute)
	for _, op := range ops {
		if op.Prefix.Len() < chunkBits {
			if op.Delete {
				t.deleteShort(op.Prefix)
			} else {
				t.insertShort(op.Prefix, op.Entry)
			}
			continue
		}
		slot := uint32(op.Prefix.Addr()) >> chunkBits
		routes, ok := staged[slot]
		if !ok {
			routes = append([]popRoute(nil), t.chunkRoutes(slot)...)
		}
		if op.Delete {
			var removed bool
			routes, removed = dropRoute(routes, op.Prefix)
			if removed {
				t.n--
			}
		} else {
			var replaced bool
			routes, replaced = putRoute(routes, op.Prefix, op.Entry)
			if !replaced {
				t.n++
			}
		}
		staged[slot] = routes
	}
	for slot, routes := range staged {
		t.setChunk(slot, routes)
	}
}

// Lookup returns the entry of the longest prefix containing addr.
func (t *Poptrie) Lookup(addr netaddr.Addr) (Entry, bool) {
	return lookupIn(&t.pages, t.short, addr)
}

// LookupExact returns the entry stored for exactly this prefix.
func (t *Poptrie) LookupExact(p netaddr.Prefix) (Entry, bool) {
	if p.Len() < chunkBits {
		if i, ok := t.shortIdx[p]; ok {
			return t.short.routes[i].entry, true
		}
		return Entry{}, false
	}
	return chunkExact(t.chunkAt(uint32(p.Addr())>>chunkBits), p)
}

// Len returns the number of installed prefixes.
func (t *Poptrie) Len() int { return t.n }

// Walk visits all entries (short routes first, then chunks in address
// order) until fn returns false.
func (t *Poptrie) Walk(fn func(netaddr.Prefix, Entry) bool) {
	walkIn(&t.pages, t.short, fn)
}

// Snapshot publishes an immutable point-in-time view. It copies only the
// 2KB root directory; pages, chunks, and the short view are shared and
// sealed, so the writer's next mutation of each copies it first
// (copy-on-write at page granularity).
func (t *Poptrie) Snapshot() Reader {
	s := &poptrieSnapshot{pages: t.pages, short: t.short, n: t.n}
	for i, page := range t.pages {
		if page != nil {
			t.pageShared[i] = true
		}
	}
	t.shortShared = true
	return s
}

// poptrieSnapshot is a frozen view of a Poptrie. All reachable state is
// immutable (enforced by the snapshotimmut lint), so methods are safe for
// arbitrary concurrent use.
type poptrieSnapshot struct {
	pages [rootPages]*rootPage
	short *shortView
	n     int
}

// Lookup returns the entry of the longest prefix containing addr.
func (s *poptrieSnapshot) Lookup(addr netaddr.Addr) (Entry, bool) {
	//lint:allow snapshotimmut read-only interior pointer so the shared read path avoids copying the 2KB directory
	return lookupIn(&s.pages, s.short, addr)
}

// LookupExact returns the entry stored for exactly this prefix. Short
// prefixes scan the frozen route list: exact queries are a control-plane
// convenience, not the hot path.
func (s *poptrieSnapshot) LookupExact(p netaddr.Prefix) (Entry, bool) {
	if p.Len() < chunkBits {
		for _, r := range s.short.routes {
			if r.prefix == p {
				return r.entry, true
			}
		}
		return Entry{}, false
	}
	var c *popChunk
	if page := s.pages[uint32(p.Addr())>>24]; page != nil {
		c = page[(uint32(p.Addr())>>chunkBits)&pageMask]
	}
	return chunkExact(c, p)
}

// Len returns the number of prefixes installed when the snapshot was
// taken.
func (s *poptrieSnapshot) Len() int { return s.n }

// Walk visits all entries in the snapshot until fn returns false.
func (s *poptrieSnapshot) Walk(fn func(netaddr.Prefix, Entry) bool) {
	//lint:allow snapshotimmut read-only interior pointer so the shared read path avoids copying the 2KB directory
	walkIn(&s.pages, s.short, fn)
}

// lookupIn is the shared read path: resolve the chunk for addr's /16 and
// walk it; fall back to the expanded short-route table on a miss (all
// chunk routes are longer than all short routes, so order is correct).
func lookupIn(pages *[rootPages]*rootPage, short *shortView, addr netaddr.Addr) (Entry, bool) {
	a := uint32(addr)
	if page := pages[a>>24]; page != nil {
		if c := page[(a>>chunkBits)&pageMask]; c != nil {
			if lf := c.lookup(a & lowMask); lf.ok {
				return lf.entry, true
			}
		}
	}
	if ri := short.expanded[a>>chunkBits]; ri != 0 {
		return short.res[ri-1].entry, true
	}
	return Entry{}, false
}

func walkIn(pages *[rootPages]*rootPage, short *shortView, fn func(netaddr.Prefix, Entry) bool) {
	for _, r := range short.routes {
		if !fn(r.prefix, r.entry) {
			return
		}
	}
	for _, page := range pages {
		if page == nil {
			continue
		}
		for _, c := range page {
			if c == nil {
				continue
			}
			for _, r := range c.routes {
				if !fn(r.prefix, r.entry) {
					return
				}
			}
		}
	}
}

func chunkExact(c *popChunk, p netaddr.Prefix) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	for _, r := range c.routes {
		if r.prefix == p {
			return r.entry, true
		}
	}
	return Entry{}, false
}

// chunkAt fetches the chunk for a /16 slot without claiming ownership.
func (t *Poptrie) chunkAt(slot uint32) *popChunk {
	page := t.pages[slot>>pageBits]
	if page == nil {
		return nil
	}
	return page[slot&pageMask]
}

// chunkRoutes returns the authoritative route list for a slot (shared;
// callers must copy before mutating).
func (t *Poptrie) chunkRoutes(slot uint32) []popRoute {
	if c := t.chunkAt(slot); c != nil {
		return c.routes
	}
	return nil
}

// setChunk compiles routes into a fresh chunk and installs it, copying
// the directory page first if a snapshot still references it.
func (t *Poptrie) setChunk(slot uint32, routes []popRoute) {
	pi := slot >> pageBits
	page := t.pages[pi]
	switch {
	case page == nil:
		if len(routes) == 0 {
			return
		}
		page = new(rootPage)
		t.pages[pi] = page
	case t.pageShared[pi]:
		cp := *page
		page = &cp
		t.pages[pi] = page
		t.pageShared[pi] = false
	}
	page.set(slot&pageMask, buildChunk(routes))
}

// set installs a chunk into an owned (unshared) page.
func (p *rootPage) set(i uint32, c *popChunk) { p[i] = c }

// routesWith returns a fresh route list with p set to e; the input list
// is never modified (it may belong to a published chunk).
func routesWith(routes []popRoute, p netaddr.Prefix, e Entry) ([]popRoute, bool) {
	out := make([]popRoute, len(routes), len(routes)+1)
	copy(out, routes)
	return putRoute(out, p, e)
}

// routesWithout returns a fresh route list with p removed.
func routesWithout(routes []popRoute, p netaddr.Prefix) ([]popRoute, bool) {
	out := append([]popRoute(nil), routes...)
	return dropRoute(out, p)
}

// putRoute replaces or appends in place (the caller owns the slice).
func putRoute(routes []popRoute, p netaddr.Prefix, e Entry) ([]popRoute, bool) {
	for i := range routes {
		if routes[i].prefix == p {
			routes[i].entry = e
			return routes, true
		}
	}
	return append(routes, popRoute{prefix: p, entry: e}), false
}

// dropRoute removes in place (the caller owns the slice).
func dropRoute(routes []popRoute, p netaddr.Prefix) ([]popRoute, bool) {
	for i := range routes {
		if routes[i].prefix == p {
			routes[i] = routes[len(routes)-1]
			return routes[:len(routes)-1], true
		}
	}
	return routes, false
}

// buildChunk compiles a route list into popcount-indexed node and leaf
// arrays. The arrays are always freshly allocated: published snapshots
// may still reference the previous chunk.
func buildChunk(routes []popRoute) *popChunk {
	if len(routes) == 0 {
		return nil
	}
	c := &popChunk{routes: routes}
	var inherited popLeaf
	scope := make([]popRoute, 0, len(routes))
	for _, r := range routes {
		if r.prefix.Len() == chunkBits {
			inherited = popLeaf{entry: r.entry, ok: true}
		} else {
			scope = append(scope, r)
		}
	}
	c.nodes = make([]popNode, 1, 1+len(scope))
	c.buildInto(0, 0, scope, inherited)
	return c
}

// buildInto fills node ni, which resolves branches after bitsDone bits of
// the low 16 have been consumed. scope holds the routes longer than
// bitsDone that reach this node; inherited is the best route already
// matched on the way down.
func (c *popChunk) buildInto(ni, bitsDone int, scope []popRoute, inherited popLeaf) {
	w := popStrides[bitsDone/6]
	shift := uint(chunkBits - bitsDone - w)
	branches := 1 << w

	type childWork struct {
		scope []popRoute
		best  popLeaf
	}
	var (
		vec, leafvec uint64
		children     []childWork
		prev         popLeaf
		prevIsLeaf   bool
	)
	lbase := uint32(len(c.leaves))
	for b := 0; b < branches; b++ {
		best, bestLen := inherited, 0
		var deeper []popRoute
		for _, r := range scope {
			rlen := r.prefix.Len() - chunkBits
			rlow := uint32(r.prefix.Addr()) & lowMask
			if rlen > bitsDone+w {
				// Longer than this level resolves: branch window match
				// means the route needs a child under b.
				if int(rlow>>shift)&(branches-1) == b {
					deeper = append(deeper, r)
				}
				continue
			}
			// Route terminates at this level: it covers branch b iff b's
			// top k bits equal the route's k fixed bits in the window.
			k := rlen - bitsDone
			if b>>(w-k) == int(rlow>>(chunkBits-rlen))&(1<<k-1) && rlen > bestLen {
				best, bestLen = popLeaf{entry: r.entry, ok: true}, rlen
			}
		}
		if len(deeper) > 0 {
			vec |= 1 << b
			children = append(children, childWork{scope: deeper, best: best})
			prevIsLeaf = false
			continue
		}
		// Leaf-run compression: only run starts occupy a leaves slot.
		if !prevIsLeaf || best != prev {
			leafvec |= 1 << b
			c.leaves = append(c.leaves, best)
		}
		prev, prevIsLeaf = best, true
	}
	cbase := uint32(len(c.nodes))
	for range children {
		c.nodes = append(c.nodes, popNode{})
	}
	c.nodes[ni] = popNode{vec: vec, leafvec: leafvec, cbase: cbase, lbase: lbase}
	for i, cw := range children {
		c.buildInto(int(cbase)+i, bitsDone+w, cw.scope, cw.best)
	}
}

// lookup resolves the low 16 bits of an address within the chunk.
func (c *popChunk) lookup(low uint32) popLeaf {
	ni := uint32(0)
	bitsDone := 0
	for level := 0; ; level++ {
		w := popStrides[level]
		b := (low >> uint(chunkBits-bitsDone-w)) & uint32(1<<w-1)
		n := c.nodes[ni]
		bit := uint64(1) << b
		if n.vec&bit != 0 {
			ni = n.cbase + uint32(bits.OnesCount64(n.vec&(bit-1)))
			bitsDone += w
			continue
		}
		run := bits.OnesCount64(n.leafvec & (bit | (bit - 1)))
		if run == 0 {
			return popLeaf{}
		}
		return c.leaves[n.lbase+uint32(run-1)]
	}
}

// ownShort returns the short view, cloning it first if a snapshot still
// references it.
func (t *Poptrie) ownShort() *shortView {
	if !t.shortShared {
		return t.short
	}
	old := t.short
	t.short = &shortView{
		expanded: append([]uint32(nil), old.expanded...),
		res:      append([]popRoute(nil), old.res...),
		routes:   append([]popRoute(nil), old.routes...),
	}
	t.shortShared = false
	return t.short
}

func (t *Poptrie) insertShort(p netaddr.Prefix, e Entry) {
	sv := t.ownShort()
	r := popRoute{prefix: p, entry: e}
	if i, ok := t.shortIdx[p]; ok {
		sv.setRoute(i, r)
	} else {
		t.shortIdx[p] = len(sv.routes)
		sv.appendRoute(r)
		t.n++
	}
	sv.stamp(r)
	t.maybeCompactShort(sv)
}

func (t *Poptrie) deleteShort(p netaddr.Prefix) bool {
	i, ok := t.shortIdx[p]
	if !ok {
		return false
	}
	sv := t.ownShort()
	last := len(sv.routes) - 1
	sv.setRoute(i, sv.routes[last])
	t.shortIdx[sv.routes[i].prefix] = i
	sv.truncRoutes(last)
	delete(t.shortIdx, p)
	t.n--

	// Recompute every /16 slot where p had been the winner. Adjacent
	// slots usually share the new winner, so memoize the last result.
	base := uint32(p.Addr()) >> chunkBits
	count := uint32(1) << (chunkBits - p.Len())
	var memo popRoute
	var memoRi uint32
	for s := base; s < base+count; s++ {
		cur := sv.expanded[s]
		if cur == 0 || sv.res[cur-1].prefix != p {
			continue
		}
		ri := uint32(0)
		if r, ok := t.bestShortFor(s); ok {
			if memoRi != 0 && memo == r {
				ri = memoRi
			} else {
				ri = sv.appendRes(r)
				memo, memoRi = r, ri
			}
		}
		sv.setExpanded(s, ri)
	}
	t.maybeCompactShort(sv)
	return true
}

// bestShortFor probes the installed short routes longest-first for the
// winner at a /16 slot.
func (t *Poptrie) bestShortFor(slot uint32) (popRoute, bool) {
	addr := netaddr.Addr(slot << chunkBits)
	for l := chunkBits - 1; l >= 0; l-- {
		if i, ok := t.shortIdx[netaddr.PrefixFrom(addr, l)]; ok {
			return t.short.routes[i], true
		}
	}
	return popRoute{}, false
}

// maybeCompactShort rebuilds the expanded table when churn has left too
// many dead res entries behind.
func (t *Poptrie) maybeCompactShort(sv *shortView) {
	if len(sv.res) > 2*len(sv.routes)+64 {
		sv.rebuild()
	}
}

// stamp records r in res and writes it over every /16 slot it covers
// where no longer route already wins. Equal length means the same prefix
// (distinct same-length prefixes cover disjoint slots), i.e. a replace.
func (sv *shortView) stamp(r popRoute) {
	ri := sv.appendRes(r)
	l := r.prefix.Len()
	base := uint32(r.prefix.Addr()) >> chunkBits
	count := uint32(1) << (chunkBits - l)
	for s := base; s < base+count; s++ {
		cur := sv.expanded[s]
		if cur == 0 || sv.res[cur-1].prefix.Len() <= l {
			sv.expanded[s] = ri
		}
	}
}

// rebuild recomputes expanded/res from the route list: stamping in
// ascending length order makes the longest covering route win every slot.
func (sv *shortView) rebuild() {
	for i := range sv.expanded {
		sv.expanded[i] = 0
	}
	sv.res = sv.res[:0]
	byLen := append([]popRoute(nil), sv.routes...)
	sort.Slice(byLen, func(i, j int) bool { return byLen[i].prefix.Len() < byLen[j].prefix.Len() })
	for _, r := range byLen {
		sv.stamp(r)
	}
}

func (sv *shortView) setRoute(i int, r popRoute) { sv.routes[i] = r }
func (sv *shortView) appendRoute(r popRoute)     { sv.routes = append(sv.routes, r) }
func (sv *shortView) truncRoutes(n int)          { sv.routes = sv.routes[:n] }
func (sv *shortView) setExpanded(s, ri uint32)   { sv.expanded[s] = ri }
func (sv *shortView) appendRes(r popRoute) uint32 {
	sv.res = append(sv.res, r)
	return uint32(len(sv.res))
}
