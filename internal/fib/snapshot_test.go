package fib

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bgpbench/internal/netaddr"
)

func TestNewSharedDispatch(t *testing.T) {
	if _, ok := NewShared(NewPoptrie()).(*SnapshotTable); !ok {
		t.Fatal("NewShared(poptrie) should pick the snapshot table")
	}
	if _, ok := NewShared(NewPatricia()).(*Table); !ok {
		t.Fatal("NewShared(patricia) should pick the RWMutex table")
	}
	if NewShared(nil).Len() != 0 {
		t.Fatal("NewShared(nil) should build an empty default table")
	}
}

// TestSnapshotIsolation: a snapshot must keep answering from its epoch
// while the engine keeps mutating underneath it — including mutations
// that rewrite the same chunk, the same directory page, and the short-
// route view the snapshot still references.
func TestSnapshotIsolation(t *testing.T) {
	eng := NewPoptrie()
	long := netaddr.MustParsePrefix("10.1.0.0/24")
	short := netaddr.MustParsePrefix("10.0.0.0/8")
	eng.Insert(long, Entry{NextHop: netaddr.AddrFromV4(1), Port: 1})
	eng.Insert(short, Entry{NextHop: netaddr.AddrFromV4(2), Port: 2})

	snap := eng.Snapshot()

	// Same chunk: replace and delete. Same /8: replace. New routes: both
	// a chunk neighbour (same page) and a far one (different page).
	eng.Insert(long, Entry{NextHop: netaddr.AddrFromV4(9), Port: 9})
	eng.Insert(short, Entry{NextHop: netaddr.AddrFromV4(8), Port: 8})
	eng.Insert(netaddr.MustParsePrefix("10.1.1.0/24"), Entry{NextHop: netaddr.AddrFromV4(7), Port: 7})
	eng.Insert(netaddr.MustParsePrefix("192.168.0.0/16"), Entry{NextHop: netaddr.AddrFromV4(6), Port: 6})
	eng.Delete(long)

	if e, ok := snap.Lookup(netaddr.MustParseAddr("10.1.0.5")); !ok || e.NextHop != netaddr.AddrFromV4(1) {
		t.Fatalf("snapshot long lookup = %+v/%v, want NextHop 1", e, ok)
	}
	if e, ok := snap.Lookup(netaddr.MustParseAddr("10.200.0.1")); !ok || e.NextHop != netaddr.AddrFromV4(2) {
		t.Fatalf("snapshot short lookup = %+v/%v, want NextHop 2", e, ok)
	}
	if _, ok := snap.Lookup(netaddr.MustParseAddr("192.168.3.4")); ok {
		t.Fatal("snapshot sees a route inserted after it was taken")
	}
	if snap.Len() != 2 {
		t.Fatalf("snapshot Len = %d, want 2", snap.Len())
	}
	n := 0
	snap.Walk(func(netaddr.Prefix, Entry) bool { n++; return true })
	if n != 2 {
		t.Fatalf("snapshot Walk visited %d, want 2", n)
	}
	// And the live engine must see the new world.
	if e, ok := eng.Lookup(netaddr.MustParseAddr("10.1.0.5")); !ok || e.NextHop != netaddr.AddrFromV4(8) {
		t.Fatalf("live lookup after delete = %+v/%v, want short fallback NextHop 8", e, ok)
	}
}

// TestLookupUnderChurn hammers a SnapshotTable with concurrent readers
// (Lookup + Walk) while a writer commits batches; run under -race this is
// the gate for the lock-free read path. Readers also check epoch
// consistency: a batch atomically moves a prefix pair between two
// states, and a reader must never observe a half-applied batch.
func TestLookupUnderChurn(t *testing.T) {
	churnUnderLoad(t,
		netaddr.MustParsePrefix("10.0.1.0/24"), netaddr.MustParsePrefix("10.0.2.0/24"),
		netaddr.MustParseAddr("10.0.1.1"), netaddr.MustParseAddr("10.0.2.1"),
		func(rng *rand.Rand) netaddr.Prefix {
			return netaddr.PrefixFrom(netaddr.AddrFromV4(rng.Uint32()), 4+rng.Intn(29))
		})
}

// TestLookupUnderChurnV6 is the IPv6 leg of the churn gate: the flip
// pair lives in 2001:db8::/32 and the background noise mixes both
// families, so the race detector sees v4 and v6 chunk chains rebuilt
// under concurrent lock-free readers.
func TestLookupUnderChurnV6(t *testing.T) {
	churnUnderLoad(t,
		netaddr.MustParsePrefix("2001:db8:1::/48"), netaddr.MustParsePrefix("2001:db8:2::/48"),
		netaddr.MustParseAddr("2001:db8:1::1"), netaddr.MustParseAddr("2001:db8:2::1"),
		func(rng *rand.Rand) netaddr.Prefix {
			if rng.Intn(2) == 0 {
				return netaddr.PrefixFrom(netaddr.AddrFromV4(rng.Uint32()), 4+rng.Intn(29))
			}
			a := netaddr.AddrFrom128(uint64(0x2000)<<48|rng.Uint64()>>16, rng.Uint64())
			return netaddr.PrefixFrom(a, 16+rng.Intn(113))
		})
}

func churnUnderLoad(t *testing.T, pA, pB netaddr.Prefix, addrA, addrB netaddr.Addr, noisePrefix func(*rand.Rand) netaddr.Prefix) {
	tbl := NewSnapshotTable(NewPoptrie())

	even := Entry{NextHop: netaddr.AddrFromV4(100), Port: 1}
	odd := Entry{NextHop: netaddr.AddrFromV4(200), Port: 2}
	tbl.Apply([]Op{{Prefix: pA, Entry: even}, {Prefix: pB, Entry: even}})

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan string, 16)
	fail := func(msg string) {
		select {
		case errc <- msg:
		default:
		}
	}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				// Each Lookup loads the then-current snapshot, so two
				// calls may straddle a commit — only presence is
				// guaranteed across calls. Pair atomicity is asserted
				// inside a single snapshot by the Walk below.
				if _, ok := tbl.Lookup(addrA); !ok {
					fail("churned prefix missing")
					return
				}
				if _, ok := tbl.Lookup(addrB); !ok {
					fail("churned prefix missing")
					return
				}
				if rng.Intn(64) == 0 {
					prev := -1
					tbl.Walk(func(p netaddr.Prefix, e Entry) bool {
						var cur int
						switch p {
						case pA:
							cur = int(e.NextHop.V4())
						case pB:
							cur = int(e.NextHop.V4())
						default:
							return true
						}
						if prev >= 0 && cur != prev {
							fail("Walk crossed a commit boundary")
							return false
						}
						prev = cur
						return true
					})
				}
				tbl.Lookup(netaddr.AddrFromV4(rng.Uint32()))
			}
		}(int64(w))
	}

	// Writer: background noise routes plus the flipping pair, batched.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			e := even
			if i%2 == 1 {
				e = odd
			}
			ops := []Op{{Prefix: pA, Entry: e}, {Prefix: pB, Entry: e}}
			for j := 0; j < 16; j++ {
				p := noisePrefix(rng)
				// A noise route overlapping the flip pair could shadow
				// it and fake a consistency violation.
				if p.Overlaps(pA) || p.Overlaps(pB) {
					continue
				}
				if rng.Intn(3) == 0 {
					ops = append(ops, Op{Prefix: p, Delete: true})
				} else {
					ops = append(ops, Op{Prefix: p, Entry: Entry{NextHop: netaddr.AddrFromV4(rng.Uint32()), Port: rng.Intn(16)}})
				}
			}
			tbl.Apply(ops)
		}
		stop.Store(true)
	}()

	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	if batches, _ := tbl.BatchStats(); batches != 401 {
		t.Fatalf("batches = %d, want 401", batches)
	}
}
