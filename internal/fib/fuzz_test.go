package fib

import (
	"encoding/binary"
	"testing"

	"bgpbench/internal/netaddr"
)

// fuzzOp decodes one 6-byte record: kind, 4 address bytes, prefix length.
// Kind selects insert (with an entry derived from the address), delete,
// or a batch boundary that flushes the staged ops through Apply; kind bit
// 4 selects IPv6, expanding the 4 address bytes into the high 64 bits so
// long prefixes exercise the chained chunk levels.
const fuzzRec = 6

func fuzzAddr(kind byte, v uint32) netaddr.Addr {
	if kind&0x10 != 0 {
		return netaddr.AddrFrom128(uint64(v)<<32|uint64(v^0xA5A5), uint64(v)<<7)
	}
	return netaddr.AddrFromV4(v)
}

func decodeFuzzOps(data []byte) []Op {
	ops := make([]Op, 0, len(data)/fuzzRec)
	for len(data) >= fuzzRec {
		kind := data[0]
		v := binary.BigEndian.Uint32(data[1:5])
		addr := fuzzAddr(kind, v)
		p := netaddr.PrefixFrom(addr, int(data[5])%(addr.Bits()+1))
		if kind%3 == 1 {
			ops = append(ops, Op{Prefix: p, Delete: true})
		} else {
			ops = append(ops, Op{Prefix: p, Entry: Entry{NextHop: netaddr.AddrFromV4(v ^ 0x5A5A5A5A), Port: int(kind) % 16}})
		}
		data = data[fuzzRec:]
	}
	return ops
}

// addrInc returns the next address, wrapping within the family.
func addrInc(a netaddr.Addr) netaddr.Addr {
	if a.Is4() {
		return netaddr.AddrFromV4(a.V4() + 1)
	}
	hi, lo := a.Hi(), a.Lo()+1
	if lo == 0 {
		hi++
	}
	return netaddr.AddrFrom128(hi, lo)
}

// FuzzEngineOps streams a decoded Insert/Delete/Apply mix into every
// engine (and the SnapshotTable wrapper) and cross-checks the final
// state against the Linear reference: same length, same exact entries,
// and same longest-prefix answers around every route boundary.
func FuzzEngineOps(f *testing.F) {
	seed := func(recs ...[]byte) {
		var b []byte
		for _, r := range recs {
			b = append(b, r...)
		}
		f.Add(b)
	}
	rec := func(kind byte, addr uint32, length byte) []byte {
		var b [fuzzRec]byte
		b[0] = kind
		binary.BigEndian.PutUint32(b[1:5], addr)
		b[5] = length
		return b[:]
	}
	// Default route, then shadowed and unshadowed.
	seed(rec(0, 0, 0), rec(0, 0x0A000000, 8), rec(1, 0, 0))
	// Duplicate inserts (replace) at chunked and short lengths.
	seed(rec(0, 0x0A010000, 24), rec(2, 0x0A010000, 24), rec(0, 0xC0000000, 4), rec(2, 0xC0000000, 4))
	// Delete of absent prefixes, including /0.
	seed(rec(1, 0x7F000001, 32), rec(1, 0, 0), rec(1, 0x0A000000, 12))
	// Chunk-boundary cluster: /15 spanning two /16 slots plus /16 and /17
	// neighbours, then batch-flush sensitive delete/reinsert.
	seed(rec(0, 0x0A000000, 15), rec(0, 0x0A000000, 16), rec(0, 0x0A010000, 17),
		rec(3, 0, 0), rec(1, 0x0A000000, 16), rec(0, 0x0A000000, 16), rec(3, 0, 0))
	// IPv6 (kind bit 4): short, chunk-level, and deep chained-chunk
	// lengths, with a delete that uncovers a shallower chunk route.
	seed(rec(0x10, 0x20010db8, 13), rec(0x10, 0x20010db8, 32), rec(0x10, 0x20010db8, 48),
		rec(0x10, 0x20010db8, 64), rec(0x10, 0x20010db8, 128), rec(0x11, 0x20010db8, 48))
	// Mixed-family batch with same leading bytes in both families.
	seed(rec(0, 0x20010db8, 24), rec(0x10, 0x20010db8, 24), rec(0x13, 0, 0),
		rec(0x11, 0x20010db8, 24), rec(1, 0x20010db8, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("cap the op stream so /0 expansions stay fast")
		}
		ops := decodeFuzzOps(data)

		ref := NewLinear()
		others := map[string]Engine{
			"binary":   NewBinaryTrie(),
			"patricia": NewPatricia(),
			"hashlen":  NewHashLengths(),
			"poptrie":  NewPoptrie(),
			"snapshot": NewSnapshotTable(NewPoptrie()),
		}

		// Kind%3==2 records also mark batch boundaries: everything since
		// the previous boundary goes through Apply instead of single ops,
		// exercising the bulk restructuring paths.
		flushFrom := 0
		flush := func(upto int) {
			if upto == flushFrom {
				return
			}
			batch := ops[flushFrom:upto]
			ref.Apply(batch)
			for _, eng := range others {
				eng.Apply(batch)
			}
			flushFrom = upto
		}
		for i, op := range ops {
			if !op.Delete && op.Entry.Port >= 8 {
				continue // part of the pending batch
			}
			flush(i)
			if op.Delete {
				want := ref.Delete(op.Prefix)
				for name, eng := range others {
					if got := eng.Delete(op.Prefix); got != want {
						t.Fatalf("%s.Delete(%v) = %v, want %v", name, op.Prefix, got, want)
					}
				}
			} else {
				ref.Insert(op.Prefix, op.Entry)
				for _, eng := range others {
					eng.Insert(op.Prefix, op.Entry)
				}
			}
			flushFrom = i + 1
		}
		flush(len(ops))

		for name, eng := range others {
			if eng.Len() != ref.Len() {
				t.Fatalf("%s.Len = %d, want %d", name, eng.Len(), ref.Len())
			}
		}
		ref.Walk(func(p netaddr.Prefix, want Entry) bool {
			for name, eng := range others {
				if got, ok := eng.LookupExact(p); !ok || got != want {
					t.Fatalf("%s.LookupExact(%v) = %+v/%v, want %+v", name, p, got, ok, want)
				}
			}
			return true
		})
		// LPM agreement at the sensitive addresses: each route's base,
		// its last covered address, and one past the end.
		probe := func(a netaddr.Addr) {
			wantE, wantOK := ref.Lookup(a)
			for name, eng := range others {
				gotE, gotOK := eng.Lookup(a)
				if gotOK != wantOK || gotE != wantE {
					t.Fatalf("%s.Lookup(%v) = %+v/%v, want %+v/%v", name, a, gotE, gotOK, wantE, wantOK)
				}
			}
		}
		for _, op := range ops {
			base := op.Prefix.Addr()
			probe(base)
			end := op.Prefix.Host(^uint64(0))
			probe(end)
			probe(addrInc(end))
		}
	})
}
