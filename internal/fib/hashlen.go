package fib

import "bgpbench/internal/netaddr"

// HashLengths keeps one hash table per prefix length and probes them
// longest-first on lookup — "linear search on lengths" from the lookup
// algorithm taxonomy. Insert and delete are O(1); lookup probes at most
// one table per populated length, which makes it competitive on real
// routing tables where only ~8 lengths are populated. Both address
// families share the tables: Addr keys are family-tagged, so equal-width
// prefixes from different families never collide.
type HashLengths struct {
	tables  [129]map[netaddr.Addr]Entry
	lengths []int // populated lengths, descending
	n       int
}

// NewHashLengths returns an empty engine.
func NewHashLengths() *HashLengths { return &HashLengths{} }

// Insert adds or replaces the entry for a prefix.
func (h *HashLengths) Insert(p netaddr.Prefix, e Entry) {
	l := p.Len()
	if h.tables[l] == nil {
		h.tables[l] = make(map[netaddr.Addr]Entry)
		h.addLength(l)
	}
	if _, ok := h.tables[l][p.Addr()]; !ok {
		h.n++
	}
	h.tables[l][p.Addr()] = e
}

func (h *HashLengths) addLength(l int) {
	i := 0
	for i < len(h.lengths) && h.lengths[i] > l {
		i++
	}
	h.lengths = append(h.lengths, 0)
	copy(h.lengths[i+1:], h.lengths[i:])
	h.lengths[i] = l
}

// Delete removes a prefix, reporting whether it was present.
func (h *HashLengths) Delete(p netaddr.Prefix) bool {
	l := p.Len()
	m := h.tables[l]
	if m == nil {
		return false
	}
	if _, ok := m[p.Addr()]; !ok {
		return false
	}
	delete(m, p.Addr())
	h.n--
	if len(m) == 0 {
		h.tables[l] = nil
		for i, x := range h.lengths {
			if x == l {
				h.lengths = append(h.lengths[:i], h.lengths[i+1:]...)
				break
			}
		}
	}
	return true
}

// Lookup probes populated lengths longest-first, skipping lengths wider
// than the address family.
func (h *HashLengths) Lookup(addr netaddr.Addr) (Entry, bool) {
	bits := addr.Bits()
	for _, l := range h.lengths {
		if l > bits {
			continue
		}
		if e, ok := h.tables[l][addr.Masked(l)]; ok {
			return e, true
		}
	}
	return Entry{}, false
}

// LookupExact returns the entry stored for exactly this prefix.
func (h *HashLengths) LookupExact(p netaddr.Prefix) (Entry, bool) {
	e, ok := h.tables[p.Len()][p.Addr()]
	return e, ok
}

// Len returns the number of installed prefixes.
func (h *HashLengths) Len() int { return h.n }

// Walk visits entries grouped by descending prefix length.
func (h *HashLengths) Walk(fn func(netaddr.Prefix, Entry) bool) {
	for _, l := range h.lengths {
		for a, e := range h.tables[l] {
			if !fn(netaddr.PrefixFrom(a, l), e) {
				return
			}
		}
	}
}

// Apply performs the batch as ordered single ops against the per-length
// hash tables.
func (h *HashLengths) Apply(ops []Op) { applyOps(h, ops) }
