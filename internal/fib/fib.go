// Package fib implements the forwarding information base: longest-prefix-
// match lookup structures mapping IPv4 destination addresses to next hops.
//
// Four interchangeable engines are provided, spanning the classic design
// space surveyed by Ruiz-Sanchez et al. (IEEE Network 2001), which the
// paper's forwarding path depends on:
//
//   - Linear: sorted linear scan; the obviously-correct reference used by
//     the property tests and the baseline in lookup benchmarks.
//   - BinaryTrie: one bit per level, the textbook structure.
//   - Patricia: path-compressed binary trie; fewer nodes, deeper logic.
//   - HashLengths: one hash table per prefix length, probed longest-first.
//
// Engines are not safe for concurrent use; Table adds the RWMutex wrapper
// the router's data plane and control plane share.
package fib

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bgpbench/internal/netaddr"
)

// Entry is the forwarding action for a destination prefix.
type Entry struct {
	NextHop netaddr.Addr // next-hop router address
	Port    int          // egress interface index
}

// Engine is a longest-prefix-match structure. Implementations are
// single-goroutine; wrap with Table for shared use.
type Engine interface {
	// Insert adds or replaces the entry for a prefix.
	Insert(p netaddr.Prefix, e Entry)
	// Delete removes a prefix, reporting whether it was present.
	Delete(p netaddr.Prefix) bool
	// Lookup returns the entry of the longest prefix containing addr.
	Lookup(addr netaddr.Addr) (Entry, bool)
	// LookupExact returns the entry stored for exactly this prefix.
	LookupExact(p netaddr.Prefix) (Entry, bool)
	// Len returns the number of installed prefixes.
	Len() int
	// Walk visits all entries in unspecified order until fn returns false.
	Walk(fn func(netaddr.Prefix, Entry) bool)
}

// EngineNames lists the selectable engine implementations.
var EngineNames = []string{"linear", "binary", "patricia", "hashlen"}

// NewEngine constructs an engine by name.
func NewEngine(name string) (Engine, error) {
	switch name {
	case "linear":
		return NewLinear(), nil
	case "binary":
		return NewBinaryTrie(), nil
	case "patricia":
		return NewPatricia(), nil
	case "hashlen":
		return NewHashLengths(), nil
	}
	return nil, fmt.Errorf("fib: unknown engine %q (have %v)", name, EngineNames)
}

// Table is a concurrency-safe FIB shared between the control plane (which
// installs and removes routes) and the data plane (which looks up
// destinations). It also counts updates and lookups so benchmark scenarios
// can verify which operations touched the forwarding table.
type Table struct {
	mu      sync.RWMutex
	eng     Engine
	updates atomic.Uint64
	lookups atomic.Uint64
}

// NewTable wraps an engine; a nil engine defaults to Patricia.
func NewTable(eng Engine) *Table {
	if eng == nil {
		eng = NewPatricia()
	}
	return &Table{eng: eng}
}

// Insert adds or replaces a route.
func (t *Table) Insert(p netaddr.Prefix, e Entry) {
	t.mu.Lock()
	t.eng.Insert(p, e)
	t.mu.Unlock()
	t.updates.Add(1)
}

// Delete removes a route, reporting whether it was present.
func (t *Table) Delete(p netaddr.Prefix) bool {
	t.mu.Lock()
	ok := t.eng.Delete(p)
	t.mu.Unlock()
	t.updates.Add(1)
	return ok
}

// Lookup resolves a destination address.
func (t *Table) Lookup(addr netaddr.Addr) (Entry, bool) {
	t.lookups.Add(1)
	t.mu.RLock()
	e, ok := t.eng.Lookup(addr)
	t.mu.RUnlock()
	return e, ok
}

// LookupExact returns the entry stored for exactly this prefix.
func (t *Table) LookupExact(p netaddr.Prefix) (Entry, bool) {
	t.mu.RLock()
	e, ok := t.eng.LookupExact(p)
	t.mu.RUnlock()
	return e, ok
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int {
	t.mu.RLock()
	n := t.eng.Len()
	t.mu.RUnlock()
	return n
}

// Walk visits all entries while holding the read lock; fn must not call
// back into the table.
func (t *Table) Walk(fn func(netaddr.Prefix, Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.eng.Walk(fn)
}

// Updates returns the count of Insert+Delete operations since creation.
func (t *Table) Updates() uint64 { return t.updates.Load() }

// Lookups returns the count of Lookup operations since creation.
func (t *Table) Lookups() uint64 { return t.lookups.Load() }
