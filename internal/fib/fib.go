// Package fib implements the forwarding information base: longest-prefix-
// match lookup structures mapping IPv4 destination addresses to next hops.
//
// Five interchangeable engines are provided, spanning the classic design
// space surveyed by Ruiz-Sanchez et al. (IEEE Network 2001) — which the
// paper's forwarding path depends on — plus one modern successor:
//
//   - Linear: sorted linear scan; the obviously-correct reference used by
//     the property tests and the baseline in lookup benchmarks.
//   - BinaryTrie: one bit per level, the textbook structure.
//   - Patricia: path-compressed binary trie; fewer nodes, deeper logic.
//   - HashLengths: one hash table per prefix length, probed longest-first.
//   - Poptrie: level-compressed multibit trie with popcount-indexed
//     children and a direct-index /16 root stride; cache-compact lookups
//     and cheap copy-on-write snapshots.
//
// Engines are not safe for concurrent use. Table adds the RWMutex wrapper
// the router's data plane and control plane share; SnapshotTable does the
// same for snapshot-capable engines with a lock-free read path, and
// NewShared picks the right wrapper for an engine.
package fib

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bgpbench/internal/netaddr"
)

// Entry is the forwarding action for a destination prefix.
type Entry struct {
	NextHop netaddr.Addr // next-hop router address
	Port    int          // egress interface index
}

// Op is one mutation in a batched FIB commit: an insert/replace of Entry
// for Prefix, or a delete when Delete is set.
type Op struct {
	Prefix netaddr.Prefix
	Entry  Entry
	Delete bool
}

// Engine is a longest-prefix-match structure. Implementations are
// single-goroutine; wrap with Table for shared use.
type Engine interface {
	// Insert adds or replaces the entry for a prefix.
	Insert(p netaddr.Prefix, e Entry)
	// Delete removes a prefix, reporting whether it was present.
	Delete(p netaddr.Prefix) bool
	// Apply performs a batch of mutations in order. Equivalent to calling
	// Insert/Delete per op; engines may restructure once per batch instead
	// of once per op.
	Apply(ops []Op)
	// Lookup returns the entry of the longest prefix containing addr.
	Lookup(addr netaddr.Addr) (Entry, bool)
	// LookupExact returns the entry stored for exactly this prefix.
	LookupExact(p netaddr.Prefix) (Entry, bool)
	// Len returns the number of installed prefixes.
	Len() int
	// Walk visits all entries in unspecified order until fn returns false.
	Walk(fn func(netaddr.Prefix, Entry) bool)
}

// applyOps is the generic per-op batch implementation engines delegate to
// when they have no cheaper bulk restructuring.
func applyOps(eng Engine, ops []Op) {
	for _, op := range ops {
		if op.Delete {
			eng.Delete(op.Prefix)
		} else {
			eng.Insert(op.Prefix, op.Entry)
		}
	}
}

// EngineNames lists the selectable engine implementations.
var EngineNames = []string{"linear", "binary", "patricia", "hashlen", "poptrie"}

// NewEngine constructs an engine by name.
func NewEngine(name string) (Engine, error) {
	switch name {
	case "linear":
		return NewLinear(), nil
	case "binary":
		return NewBinaryTrie(), nil
	case "patricia":
		return NewPatricia(), nil
	case "hashlen":
		return NewHashLengths(), nil
	case "poptrie":
		return NewPoptrie(), nil
	}
	return nil, fmt.Errorf("fib: unknown engine %q (have %v)", name, EngineNames)
}

// Table is a concurrency-safe FIB shared between the control plane (which
// installs and removes routes) and the data plane (which looks up
// destinations). It also counts updates and lookups so benchmark scenarios
// can verify which operations touched the forwarding table.
type Table struct {
	mu       sync.RWMutex
	eng      Engine
	updates  atomic.Uint64
	lookups  atomic.Uint64
	batches  atomic.Uint64 // Apply calls with at least one op
	batchOps atomic.Uint64 // total ops committed through Apply
}

// NewTable wraps an engine; a nil engine defaults to Patricia.
func NewTable(eng Engine) *Table {
	if eng == nil {
		eng = NewPatricia()
	}
	return &Table{eng: eng}
}

// Insert adds or replaces a route.
func (t *Table) Insert(p netaddr.Prefix, e Entry) {
	t.mu.Lock()
	t.eng.Insert(p, e)
	t.mu.Unlock()
	t.updates.Add(1)
}

// Delete removes a route, reporting whether it was present.
func (t *Table) Delete(p netaddr.Prefix) bool {
	t.mu.Lock()
	ok := t.eng.Delete(p)
	t.mu.Unlock()
	t.updates.Add(1)
	return ok
}

// Apply commits a batch of route changes under one write-lock round-trip
// instead of per-prefix lock acquisitions — the control plane's bulk
// commit path for a burst of decision-process changes.
func (t *Table) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	t.mu.Lock()
	t.eng.Apply(ops)
	t.mu.Unlock()
	t.updates.Add(uint64(len(ops)))
	t.batches.Add(1)
	t.batchOps.Add(uint64(len(ops)))
}

// Lookup resolves a destination address.
func (t *Table) Lookup(addr netaddr.Addr) (Entry, bool) {
	t.lookups.Add(1)
	t.mu.RLock()
	e, ok := t.eng.Lookup(addr)
	t.mu.RUnlock()
	return e, ok
}

// LookupExact returns the entry stored for exactly this prefix.
func (t *Table) LookupExact(p netaddr.Prefix) (Entry, bool) {
	t.mu.RLock()
	e, ok := t.eng.LookupExact(p)
	t.mu.RUnlock()
	return e, ok
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int {
	t.mu.RLock()
	n := t.eng.Len()
	t.mu.RUnlock()
	return n
}

// Walk visits all entries while holding the read lock; fn must not call
// back into the table.
func (t *Table) Walk(fn func(netaddr.Prefix, Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.eng.Walk(fn)
}

// Updates returns the count of Insert+Delete operations since creation.
func (t *Table) Updates() uint64 { return t.updates.Load() }

// Lookups returns the count of Lookup operations since creation.
func (t *Table) Lookups() uint64 { return t.lookups.Load() }

// BatchStats returns the number of batched commits and the total ops they
// carried; ops/batches is the mean batch size.
func (t *Table) BatchStats() (batches, ops uint64) {
	return t.batches.Load(), t.batchOps.Load()
}
