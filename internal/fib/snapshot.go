package fib

import (
	"sync"
	"sync/atomic"

	"bgpbench/internal/netaddr"
)

// Reader is the read-only face of a FIB: everything the data plane and
// the status/metrics endpoints need. Both live tables and frozen
// snapshots implement it.
type Reader interface {
	// Lookup returns the entry of the longest prefix containing addr.
	Lookup(addr netaddr.Addr) (Entry, bool)
	// LookupExact returns the entry stored for exactly this prefix.
	LookupExact(p netaddr.Prefix) (Entry, bool)
	// Len returns the number of installed prefixes.
	Len() int
	// Walk visits all entries in unspecified order until fn returns false.
	Walk(fn func(netaddr.Prefix, Entry) bool)
}

// Snapshotter is an engine that can publish immutable point-in-time
// views of itself cheaply (copy-on-write, not a deep copy). The returned
// Reader must remain valid and unchanging while the engine keeps
// mutating.
type Snapshotter interface {
	Engine
	Snapshot() Reader
}

// Shared is the concurrency-safe FIB surface the control plane (which
// installs and removes routes) and the data plane (which resolves
// destinations) share. *Table implements it with an RWMutex; for
// snapshot-capable engines *SnapshotTable implements it with a lock-free
// read path.
type Shared interface {
	Reader
	// Insert adds or replaces a route.
	Insert(p netaddr.Prefix, e Entry)
	// Delete removes a route, reporting whether it was present.
	Delete(p netaddr.Prefix) bool
	// Apply commits a batch of route changes as one unit.
	Apply(ops []Op)
	// Updates returns the count of Insert+Delete operations since creation.
	Updates() uint64
	// Lookups returns the count of Lookup operations since creation.
	Lookups() uint64
	// BatchStats returns the number of batched commits and the total ops
	// they carried.
	BatchStats() (batches, ops uint64)
}

// NewShared wraps an engine in the best available concurrent table:
// engines that can snapshot get the lock-free SnapshotTable read path,
// the rest keep the classic RWMutex Table. A nil engine defaults like
// NewTable.
func NewShared(eng Engine) Shared {
	if s, ok := eng.(Snapshotter); ok {
		return NewSnapshotTable(s)
	}
	return NewTable(eng)
}

// sharedView boxes the current snapshot so it fits atomic.Pointer.
type sharedView struct {
	Reader
}

// SnapshotTable is a concurrency-safe FIB over a Snapshotter engine.
// Writers serialize on a mutex and, after each mutation, publish a fresh
// immutable snapshot through an atomic pointer (epoch-style: each commit
// is one epoch). Readers load the current snapshot and never take a
// lock, so dataplane Lookup, /metrics scrapes, and FIB dumps proceed at
// full speed while a batch commit is in flight — there is no RWMutex for
// a writer to hold them behind.
//
// The consistency model is per-snapshot: a reader sees the table exactly
// as of some commit boundary, never a half-applied batch.
type SnapshotTable struct {
	mu   sync.Mutex
	eng  Snapshotter
	view atomic.Pointer[sharedView]

	updates  atomic.Uint64
	lookups  atomic.Uint64
	batches  atomic.Uint64 // Apply calls with at least one op
	batchOps atomic.Uint64 // total ops committed through Apply
}

// NewSnapshotTable wraps a snapshot-capable engine and publishes its
// initial (usually empty) view.
func NewSnapshotTable(eng Snapshotter) *SnapshotTable {
	t := &SnapshotTable{eng: eng}
	t.view.Store(&sharedView{eng.Snapshot()})
	return t
}

// publishLocked snapshots the engine and swings the read pointer; the
// caller holds mu.
func (t *SnapshotTable) publishLocked() {
	t.view.Store(&sharedView{t.eng.Snapshot()})
}

// Insert adds or replaces a route and publishes a new snapshot.
func (t *SnapshotTable) Insert(p netaddr.Prefix, e Entry) {
	t.mu.Lock()
	t.eng.Insert(p, e)
	t.publishLocked()
	t.mu.Unlock()
	t.updates.Add(1)
}

// Delete removes a route and publishes a new snapshot.
func (t *SnapshotTable) Delete(p netaddr.Prefix) bool {
	t.mu.Lock()
	ok := t.eng.Delete(p)
	if ok {
		t.publishLocked()
	}
	t.mu.Unlock()
	t.updates.Add(1)
	return ok
}

// Apply commits a batch of route changes as one epoch: readers observe
// either none or all of the batch.
func (t *SnapshotTable) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	t.mu.Lock()
	t.eng.Apply(ops)
	t.publishLocked()
	t.mu.Unlock()
	t.updates.Add(uint64(len(ops)))
	t.batches.Add(1)
	t.batchOps.Add(uint64(len(ops)))
}

// Lookup resolves a destination address against the current snapshot
// without locking.
func (t *SnapshotTable) Lookup(addr netaddr.Addr) (Entry, bool) {
	t.lookups.Add(1)
	return t.view.Load().Lookup(addr)
}

// LookupExact returns the entry stored for exactly this prefix in the
// current snapshot.
func (t *SnapshotTable) LookupExact(p netaddr.Prefix) (Entry, bool) {
	return t.view.Load().LookupExact(p)
}

// Len returns the number of installed prefixes in the current snapshot.
func (t *SnapshotTable) Len() int {
	return t.view.Load().Len()
}

// Walk visits the current snapshot. Unlike Table.Walk no lock is held:
// concurrent commits proceed, and fn may take as long as it likes
// without stalling them (it sees the epoch it started with throughout).
func (t *SnapshotTable) Walk(fn func(netaddr.Prefix, Entry) bool) {
	t.view.Load().Walk(fn)
}

// Updates returns the count of Insert+Delete operations since creation.
func (t *SnapshotTable) Updates() uint64 { return t.updates.Load() }

// Lookups returns the count of Lookup operations since creation.
func (t *SnapshotTable) Lookups() uint64 { return t.lookups.Load() }

// BatchStats returns the number of batched commits and the total ops
// they carried; ops/batches is the mean batch size.
func (t *SnapshotTable) BatchStats() (batches, ops uint64) {
	return t.batches.Load(), t.batchOps.Load()
}
