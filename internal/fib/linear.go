package fib

import (
	"sort"

	"bgpbench/internal/netaddr"
)

// Linear is the reference LPM engine: a slice of routes kept sorted by
// descending prefix length, scanned front to back on lookup. O(n) lookup,
// but trivially correct — the other engines are property-tested against it.
type Linear struct {
	routes []linearRoute
}

type linearRoute struct {
	prefix netaddr.Prefix
	entry  Entry
}

// NewLinear returns an empty reference engine.
func NewLinear() *Linear { return &Linear{} }

// Insert adds or replaces the entry for a prefix.
func (l *Linear) Insert(p netaddr.Prefix, e Entry) {
	i := l.find(p)
	if i >= 0 {
		l.routes[i].entry = e
		return
	}
	l.routes = append(l.routes, linearRoute{prefix: p, entry: e})
	l.sort()
}

func (l *Linear) sort() {
	sort.Slice(l.routes, func(i, j int) bool {
		a, b := l.routes[i].prefix, l.routes[j].prefix
		if a.Len() != b.Len() {
			return a.Len() > b.Len()
		}
		return a.Compare(b) < 0
	})
}

// Apply commits a batch with one restructuring pass: ops mutate against a
// prefix index, dead rows are compacted, and the slice is re-sorted once
// instead of once per insert as repeated Insert calls would.
func (l *Linear) Apply(ops []Op) {
	idx := make(map[netaddr.Prefix]int, len(l.routes))
	for i, r := range l.routes {
		idx[r.prefix] = i
	}
	var dead map[int]bool
	for _, op := range ops {
		i, ok := idx[op.Prefix]
		if op.Delete {
			if ok {
				if dead == nil {
					dead = make(map[int]bool)
				}
				dead[i] = true
				delete(idx, op.Prefix)
			}
			continue
		}
		if ok {
			l.routes[i] = linearRoute{prefix: op.Prefix, entry: op.Entry}
			continue
		}
		l.routes = append(l.routes, linearRoute{prefix: op.Prefix, entry: op.Entry})
		idx[op.Prefix] = len(l.routes) - 1
	}
	if len(dead) > 0 {
		out := l.routes[:0]
		for i, r := range l.routes {
			if !dead[i] {
				out = append(out, r)
			}
		}
		l.routes = out
	}
	l.sort()
}

func (l *Linear) find(p netaddr.Prefix) int {
	for i, r := range l.routes {
		if r.prefix == p {
			return i
		}
	}
	return -1
}

// Delete removes a prefix, reporting whether it was present.
func (l *Linear) Delete(p netaddr.Prefix) bool {
	i := l.find(p)
	if i < 0 {
		return false
	}
	l.routes = append(l.routes[:i], l.routes[i+1:]...)
	return true
}

// Lookup scans longest-first for the first containing prefix.
func (l *Linear) Lookup(addr netaddr.Addr) (Entry, bool) {
	for _, r := range l.routes {
		if r.prefix.Contains(addr) {
			return r.entry, true
		}
	}
	return Entry{}, false
}

// LookupExact returns the entry stored for exactly this prefix.
func (l *Linear) LookupExact(p netaddr.Prefix) (Entry, bool) {
	if i := l.find(p); i >= 0 {
		return l.routes[i].entry, true
	}
	return Entry{}, false
}

// Len returns the number of installed prefixes.
func (l *Linear) Len() int { return len(l.routes) }

// Walk visits entries in descending-length order.
func (l *Linear) Walk(fn func(netaddr.Prefix, Entry) bool) {
	for _, r := range l.routes {
		if !fn(r.prefix, r.entry) {
			return
		}
	}
}
