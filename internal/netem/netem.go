// Package netem is a deterministic, seedable fault-injection layer for
// net.Conn transports. It sits between a BGP session and its TCP socket
// and perturbs the byte stream the way real peerings are perturbed:
// latency and jitter, bandwidth caps, short writes, read/write stalls,
// byte corruption, segment reordering, and mid-stream resets.
//
// Determinism is the point. Every fault is a scheduled Event placed at a
// byte offset of the connection's write (or read) stream, and the
// schedule is a pure function of (profile, seed, connection name,
// attempt number) — never of wall time or goroutine interleaving. Two
// runs with the same seed and profile therefore plan the byte-identical
// fault schedule, which Injector.ScheduleDigest exposes for replay
// checks. Time-shaped behaviour (latency, bandwidth, stalls) goes
// through a pluggable Clock; the VirtualClock advances instantly, so
// heavily-faulted conformance runs cost no wall-clock sleep.
//
// Convergence guarantee: any schedule containing corruption or
// reordering ends with a reset. A flipped byte can decode into a valid
// but different BGP message, silently polluting the receiver's RIB; the
// trailing reset forces a session flap, the flap withdraws everything
// the peer contributed, and a replaying speaker then restores the exact
// intended state. This is what lets the conformance harness assert
// digest equality between faulted and clean runs.
package netem

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for the fault layer. RealClock sleeps on wall
// time (chaos runs against live routers); VirtualClock advances a
// counter instantly (fast deterministic conformance runs).
type Clock interface {
	// Now returns elapsed virtual or wall time since the clock started.
	Now() time.Duration
	// Sleep advances the clock by d, blocking on wall time only for
	// real clocks.
	Sleep(d time.Duration)
}

type realClock struct{ start time.Time }

// NewRealClock returns a Clock backed by wall time.
func NewRealClock() Clock { return &realClock{start: time.Now()} }

func (c *realClock) Now() time.Duration { return time.Since(c.start) }
func (c *realClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// VirtualClock is a lock-free clock that advances instantly on Sleep.
// Scheduled latencies and stalls cost zero wall time under it, which
// keeps fault-heavy conformance runs inside a CI budget.
type VirtualClock struct{ now atomic.Int64 }

// NewVirtualClock returns a VirtualClock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the accumulated virtual time.
func (c *VirtualClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Sleep advances virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// Profile describes one fault regime. The zero value (plus a Name) is a
// clean transparent transport. Continuous shaping (latency, bandwidth,
// chunking) applies to every byte; scheduled events are placed at seeded
// byte offsets in [MinOffset, Horizon) on each faulted attempt.
type Profile struct {
	Name string
	// Seed drives every offset and mask draw. Same seed, same schedule.
	Seed int64

	// Latency (+ uniform Jitter) is added before each underlying write.
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS caps throughput by sleeping len/rate per write.
	BandwidthBPS int64
	// MaxChunk splits writes into short segments of at most this many
	// bytes, exercising partial-write handling. 0 = unlimited.
	MaxChunk int

	// CorruptEvents byte flips are scheduled on the write stream.
	CorruptEvents int
	// ReorderEvents swap two adjacent segments of up to ReorderSeg bytes.
	ReorderEvents int
	ReorderSeg    int
	// StallEvents pause the write stream for StallFor each.
	StallEvents int
	StallFor    time.Duration
	// ReadStallEvents pause delivery of received bytes for ReadStallFor.
	ReadStallEvents int
	ReadStallFor    time.Duration
	// ResetEvents close the transport mid-stream (a TCP session flap).
	ResetEvents int

	// MinOffset keeps events past the OPEN/KEEPALIVE handshake (default
	// 64 bytes) so sessions establish before faults land.
	MinOffset int64
	// Horizon bounds event placement (default 2048 bytes).
	Horizon int64
	// FaultedAttempts is how many connection attempts per name receive
	// the scheduled events; later attempts run clean, guaranteeing that
	// a reconnecting speaker eventually delivers everything. Defaults
	// to 1 when any events are configured.
	FaultedAttempts int
}

func (p Profile) withDefaults() Profile {
	if p.MinOffset == 0 {
		p.MinOffset = 64
	}
	if p.Horizon == 0 {
		p.Horizon = 2048
	}
	if p.Horizon <= p.MinOffset {
		p.Horizon = p.MinOffset + 1024
	}
	if p.ReorderSeg == 0 {
		p.ReorderSeg = 256
	}
	if p.StallFor == 0 {
		p.StallFor = 100 * time.Millisecond
	}
	if p.ReadStallFor == 0 {
		p.ReadStallFor = 100 * time.Millisecond
	}
	if p.FaultedAttempts == 0 && p.eventCount() > 0 {
		p.FaultedAttempts = 1
	}
	return p
}

func (p Profile) eventCount() int {
	return p.CorruptEvents + p.ReorderEvents + p.StallEvents + p.ReadStallEvents + p.ResetEvents
}

// Profiles returns the named fault profiles the benchmark tooling knows
// about, in presentation order.
func Profiles() []Profile {
	return []Profile{
		{Name: "clean"},
		{
			// Jittery, fragmenting, occasionally corrupting link. The
			// corruption forces a flap (trailing reset), so a replaying
			// speaker still converges to the clean state.
			Name:          "lossy-reorder",
			Latency:       50 * time.Microsecond,
			Jitter:        100 * time.Microsecond,
			MaxChunk:      512,
			CorruptEvents: 2,
			ReorderEvents: 2,
			ReorderSeg:    128,
			MinOffset:     256,
			Horizon:       1024,
		},
		{
			// Session flaps: the transport resets mid-table on the first
			// two attempts, then runs clean.
			Name:            "flap-reset",
			ResetEvents:     1,
			MinOffset:       1024,
			Horizon:         2560,
			FaultedAttempts: 2,
		},
		{
			// Read/write stalls long enough to trip short hold timers
			// when run on a real clock.
			Name:            "stall",
			StallEvents:     1,
			StallFor:        2 * time.Second,
			ReadStallEvents: 1,
			ReadStallFor:    2 * time.Second,
			MinOffset:       49,
			Horizon:         512,
		},
		{
			// Constrained link: high latency, low bandwidth, tiny
			// segments; no scheduled events.
			Name:         "slow",
			Latency:      2 * time.Millisecond,
			Jitter:       time.Millisecond,
			BandwidthBPS: 512 << 10,
			MaxChunk:     256,
		},
	}
}

// ProfileByName looks a named profile up.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the known profile names.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// EventKind classifies one scheduled fault.
type EventKind uint8

// Scheduled fault kinds.
const (
	EvCorrupt EventKind = iota
	EvReorder
	EvStall
	EvReadStall
	EvReset
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvCorrupt:
		return "corrupt"
	case EvReorder:
		return "reorder"
	case EvStall:
		return "stall"
	case EvReadStall:
		return "readstall"
	case EvReset:
		return "reset"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled fault: a kind anchored at a byte offset of the
// connection's write stream (read stream for EvReadStall). Arg carries
// the kind-specific parameter: corrupt xor mask, reorder segment length,
// or stall duration in nanoseconds.
type Event struct {
	Kind   EventKind
	Offset int64
	Arg    int64
}

// String renders the event for schedules and digests.
func (e Event) String() string { return fmt.Sprintf("%s@%d:%d", e.Kind, e.Offset, e.Arg) }

// mixSeed folds the profile seed, connection name, and attempt number
// into one PRNG seed. Each (name, attempt) pair gets an independent,
// reproducible stream.
func mixSeed(seed int64, name string, attempt int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed*1_000_003 ^ int64(h.Sum64()) ^ (int64(attempt)+1)*-0x61c8864680b583eb
}

// Schedule computes the fault schedule for one connection attempt. It is
// a pure function of its arguments: callers (and tests) can predict
// exactly which bytes will be hit. Attempts at or past FaultedAttempts
// return a nil (clean) schedule.
func Schedule(p Profile, name string, attempt int) []Event {
	p = p.withDefaults()
	if attempt >= p.FaultedAttempts || p.eventCount() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(mixSeed(p.Seed, name, attempt)))
	span := p.Horizon - p.MinOffset
	off := func() int64 { return p.MinOffset + rng.Int63n(span) }
	var evs []Event
	for i := 0; i < p.CorruptEvents; i++ {
		evs = append(evs, Event{Kind: EvCorrupt, Offset: off(), Arg: int64(1 << rng.Intn(8))})
	}
	for i := 0; i < p.ReorderEvents; i++ {
		evs = append(evs, Event{Kind: EvReorder, Offset: off(), Arg: int64(p.ReorderSeg)})
	}
	for i := 0; i < p.StallEvents; i++ {
		evs = append(evs, Event{Kind: EvStall, Offset: off(), Arg: int64(p.StallFor)})
	}
	for i := 0; i < p.ReadStallEvents; i++ {
		evs = append(evs, Event{Kind: EvReadStall, Offset: off(), Arg: int64(p.ReadStallFor)})
	}
	for i := 0; i < p.ResetEvents; i++ {
		evs = append(evs, Event{Kind: EvReset, Offset: off(), Arg: 0})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Offset != evs[j].Offset {
			return evs[i].Offset < evs[j].Offset
		}
		return evs[i].Kind < evs[j].Kind
	})
	// Distinct offsets keep event semantics unambiguous.
	for i := 1; i < len(evs); i++ {
		if evs[i].Offset <= evs[i-1].Offset {
			evs[i].Offset = evs[i-1].Offset + 1
		}
	}
	// Convergence guarantee: stream-mutating events must be followed by
	// a reset so the receiver flaps and a replaying sender can restore
	// the intended state.
	lastMut, lastReset := int64(-1), int64(-1)
	for _, e := range evs {
		switch e.Kind {
		case EvCorrupt, EvReorder:
			if e.Offset > lastMut {
				lastMut = e.Offset
			}
		case EvReset:
			if e.Offset > lastReset {
				lastReset = e.Offset
			}
		}
	}
	if lastMut >= 0 && lastReset < lastMut {
		evs = append(evs, Event{Kind: EvReset, Offset: lastMut + 512})
	}
	return evs
}

// StatsSnapshot is a point-in-time copy of an Injector's counters.
type StatsSnapshot struct {
	Dials      uint64 `json:"dials"`
	Accepts    uint64 `json:"accepts"`
	Conns      uint64 `json:"conns"`
	Corrupts   uint64 `json:"corrupts"`
	Reorders   uint64 `json:"reorders"`
	Stalls     uint64 `json:"stalls"`
	ReadStalls uint64 `json:"read_stalls"`
	Resets     uint64 `json:"resets"`
	BytesOut   uint64 `json:"bytes_out"`
	BytesIn    uint64 `json:"bytes_in"`
}

type stats struct {
	dials, accepts, conns      atomic.Uint64
	corrupts, reorders         atomic.Uint64
	stalls, readStalls, resets atomic.Uint64
	bytesOut, bytesIn          atomic.Uint64
}

// ConnSchedule reports the planned fault schedule of one wrapped
// connection attempt.
type ConnSchedule struct {
	Name    string
	Attempt int
	Events  []Event
}

// Injector wraps connections of one run under one Profile, assigning
// each (name, attempt) its deterministic schedule and aggregating fault
// counters.
type Injector struct {
	profile Profile
	clock   Clock
	st      stats

	mu       sync.Mutex
	attempts map[string]int
	conns    []ConnSchedule
}

// NewInjector builds an injector for the profile. A nil clock defaults
// to the real clock.
func NewInjector(p Profile, clock Clock) *Injector {
	if clock == nil {
		clock = NewRealClock()
	}
	return &Injector{
		profile:  p.withDefaults(),
		clock:    clock,
		attempts: make(map[string]int),
	}
}

// Profile returns the injector's (defaulted) profile.
func (in *Injector) Profile() Profile { return in.profile }

// Clock returns the injector's clock.
func (in *Injector) Clock() Clock { return in.clock }

// Wrap wraps an established connection under the given stream name. The
// attempt number is the count of connections previously wrapped under
// that name, so reconnects of a logical peer advance through the
// profile's FaultedAttempts budget deterministically.
func (in *Injector) Wrap(conn net.Conn, name string) *Conn {
	in.mu.Lock()
	attempt := in.attempts[name]
	in.attempts[name]++
	sched := Schedule(in.profile, name, attempt)
	in.conns = append(in.conns, ConnSchedule{Name: name, Attempt: attempt, Events: sched})
	in.mu.Unlock()
	in.st.conns.Add(1)

	c := &Conn{
		inner:   conn,
		inj:     in,
		name:    name,
		attempt: attempt,
		paceRng: rand.New(rand.NewSource(mixSeed(in.profile.Seed, name+"/pace", attempt))),
	}
	for _, ev := range sched {
		if ev.Kind == EvReadStall {
			c.revs = append(c.revs, ev)
		} else {
			c.wevs = append(c.wevs, ev)
		}
	}
	return c
}

// Dial returns a dial function (compatible with session.Config.Dial)
// whose connections are wrapped under the given name, attempt-numbered
// in dial order.
func (in *Injector) Dial(name string) func(network, address string, timeout time.Duration) (net.Conn, error) {
	return func(network, address string, timeout time.Duration) (net.Conn, error) {
		in.st.dials.Add(1)
		conn, err := net.DialTimeout(network, address, timeout)
		if err != nil {
			return nil, err
		}
		return in.Wrap(conn, name), nil
	}
}

// WrapListener returns a listener whose accepted connections are wrapped
// under the given name (attempt-numbered in accept order).
func (in *Injector) WrapListener(ln net.Listener, name string) net.Listener {
	return &Listener{inner: ln, inj: in, name: name}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() StatsSnapshot {
	return StatsSnapshot{
		Dials:      in.st.dials.Load(),
		Accepts:    in.st.accepts.Load(),
		Conns:      in.st.conns.Load(),
		Corrupts:   in.st.corrupts.Load(),
		Reorders:   in.st.reorders.Load(),
		Stalls:     in.st.stalls.Load(),
		ReadStalls: in.st.readStalls.Load(),
		Resets:     in.st.resets.Load(),
		BytesOut:   in.st.bytesOut.Load(),
		BytesIn:    in.st.bytesIn.Load(),
	}
}

// Schedules returns the planned schedules of every connection wrapped so
// far, sorted by (name, attempt).
func (in *Injector) Schedules() []ConnSchedule {
	in.mu.Lock()
	out := append([]ConnSchedule(nil), in.conns...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Attempt < out[j].Attempt
	})
	return out
}

// ScheduleDigest hashes the planned fault schedule of the whole run:
// every wrapped connection's (name, attempt) and its events, in sorted
// order. Two runs with the same seed, profile, and connection sequence
// produce byte-identical schedules and therefore equal digests.
func (in *Injector) ScheduleDigest() string {
	h := sha256.New()
	for _, cs := range in.Schedules() {
		fmt.Fprintf(h, "%s#%d\n", cs.Name, cs.Attempt)
		for _, ev := range cs.Events {
			fmt.Fprintf(h, "  %s\n", ev)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Listener wraps accepted connections with the injector's profile.
type Listener struct {
	inner net.Listener
	inj   *Injector
	name  string
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.inj.st.accepts.Add(1)
	return l.inj.Wrap(conn, l.name), nil
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Conn is one fault-injected connection. Reads and writes each assume a
// single caller goroutine (the session layer's reader and writer), which
// matches net.Conn usage throughout this repository.
type Conn struct {
	inner   net.Conn
	inj     *Injector
	name    string
	attempt int
	paceRng *rand.Rand

	wmu  sync.Mutex
	woff int64
	wevs []Event
	wIdx int

	rmu  sync.Mutex
	roff int64
	revs []Event
	rIdx int

	closed atomic.Bool
}

// Name returns the stream name and attempt of this connection.
func (c *Conn) Name() (string, int) { return c.name, c.attempt }

// resetError marks an injected reset so callers can distinguish
// scheduled faults from environmental ones.
type resetError struct {
	name    string
	attempt int
	offset  int64
}

func (e *resetError) Error() string {
	return fmt.Sprintf("netem: injected reset on %s#%d at write offset %d", e.name, e.attempt, e.offset)
}

// IsInjectedReset reports whether err is a scheduled netem reset.
func IsInjectedReset(err error) bool {
	_, ok := err.(*resetError)
	return ok
}

// Write applies scheduled mutations and control events, then emits the
// (possibly perturbed) bytes with pacing and chunking. Events fire at
// exact byte offsets of the cumulative write stream, so their placement
// does not depend on how callers segment their writes — with one
// exception: a reorder swaps segments within the current call only
// (cross-call holdback could deadlock request/response protocols).
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	base := c.woff
	end := base + int64(len(p))

	// First reset inside this call bounds which mutations can reach the
	// wire at all.
	resetAt := end
	for i := c.wIdx; i < len(c.wevs); i++ {
		ev := c.wevs[i]
		if ev.Offset >= end {
			break
		}
		if ev.Kind == EvReset {
			resetAt = ev.Offset
			break
		}
	}

	buf := p
	copied := false
	mutate := func() {
		if !copied {
			buf = append([]byte(nil), p...)
			copied = true
		}
	}
	for i := c.wIdx; i < len(c.wevs); i++ {
		ev := c.wevs[i]
		if ev.Offset >= resetAt {
			break
		}
		rel := int(ev.Offset - base)
		switch ev.Kind {
		case EvCorrupt:
			mutate()
			buf[rel] ^= byte(ev.Arg)
			c.inj.st.corrupts.Add(1)
		case EvReorder:
			seg := int(ev.Arg)
			if avail := (len(buf) - rel) / 2; avail < seg {
				seg = avail
			}
			if seg > 0 {
				mutate()
				tmp := append([]byte(nil), buf[rel:rel+seg]...)
				copy(buf[rel:rel+seg], buf[rel+seg:rel+2*seg])
				copy(buf[rel+seg:rel+2*seg], tmp)
				c.inj.st.reorders.Add(1)
			}
		}
	}

	n := 0
	for n < len(buf) {
		// Consume events due at the current offset; find the next
		// boundary inside this call.
		limit := len(buf)
		for c.wIdx < len(c.wevs) {
			ev := c.wevs[c.wIdx]
			if ev.Offset > base+int64(n) {
				if ev.Offset < end {
					limit = int(ev.Offset - base)
				}
				break
			}
			c.wIdx++
			switch ev.Kind {
			case EvStall:
				c.inj.st.stalls.Add(1)
				c.inj.clock.Sleep(time.Duration(ev.Arg))
			case EvReset:
				c.inj.st.resets.Add(1)
				c.closed.Store(true)
				c.inner.Close()
				return n, &resetError{name: c.name, attempt: c.attempt, offset: ev.Offset}
			}
		}
		chunkEnd := limit
		if c.inj.profile.MaxChunk > 0 && chunkEnd-n > c.inj.profile.MaxChunk {
			chunkEnd = n + c.inj.profile.MaxChunk
		}
		chunk := buf[n:chunkEnd]
		c.pace(len(chunk))
		wn, err := c.inner.Write(chunk)
		n += wn
		c.woff += int64(wn)
		c.inj.st.bytesOut.Add(uint64(wn))
		if err != nil {
			return n, err
		}
	}
	return len(p), nil
}

// pace sleeps for the profile's latency/jitter/bandwidth shaping.
func (c *Conn) pace(nbytes int) {
	p := c.inj.profile
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(c.paceRng.Int63n(int64(p.Jitter)))
	}
	if p.BandwidthBPS > 0 {
		d += time.Duration(int64(nbytes) * int64(time.Second) / p.BandwidthBPS)
	}
	if d > 0 {
		c.inj.clock.Sleep(d)
	}
}

// Read delegates to the inner transport, delaying delivery when the
// cumulative read offset crosses a scheduled read stall.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	if n > 0 {
		c.rmu.Lock()
		c.roff += int64(n)
		for c.rIdx < len(c.revs) && c.revs[c.rIdx].Offset < c.roff {
			ev := c.revs[c.rIdx]
			c.rIdx++
			c.inj.st.readStalls.Add(1)
			c.inj.clock.Sleep(time.Duration(ev.Arg))
		}
		c.rmu.Unlock()
		c.inj.st.bytesIn.Add(uint64(n))
	}
	return n, err
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closed.Store(true)
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
