package netem

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"
)

// recordConn is a fake inner transport that records every Write segment.
type recordConn struct {
	segs   [][]byte
	closed bool
}

func (c *recordConn) Write(p []byte) (int, error) {
	c.segs = append(c.segs, append([]byte(nil), p...))
	return len(p), nil
}
func (c *recordConn) Read(p []byte) (int, error)       { return 0, nil }
func (c *recordConn) Close() error                     { c.closed = true; return nil }
func (c *recordConn) LocalAddr() net.Addr              { return nil }
func (c *recordConn) RemoteAddr() net.Addr             { return nil }
func (c *recordConn) SetDeadline(time.Time) error      { return nil }
func (c *recordConn) SetReadDeadline(time.Time) error  { return nil }
func (c *recordConn) SetWriteDeadline(time.Time) error { return nil }

func (c *recordConn) bytes() []byte {
	var b bytes.Buffer
	for _, s := range c.segs {
		b.Write(s)
	}
	return b.Bytes()
}

// TestScheduleDeterministic: the schedule is a pure function of
// (profile, name, attempt) — byte-identical across calls, different
// across names and attempts.
func TestScheduleDeterministic(t *testing.T) {
	p, ok := ProfileByName("lossy-reorder")
	if !ok {
		t.Fatal("lossy-reorder profile missing")
	}
	p.Seed = 42
	a := Schedule(p, "speaker1", 0)
	b := Schedule(p, "speaker1", 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("lossy-reorder produced an empty schedule")
	}
	other := Schedule(p, "speaker2", 0)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different names produced identical schedules")
	}
	// Attempts at/past FaultedAttempts run clean — the convergence budget.
	pd := p.withDefaults()
	if got := Schedule(p, "speaker1", pd.FaultedAttempts); got != nil {
		t.Fatalf("attempt %d not clean: %v", pd.FaultedAttempts, got)
	}
}

// TestScheduleOrderingAndTrailingReset: events come back sorted with
// strictly increasing offsets, and any schedule containing a mutation
// (corrupt/reorder) ends with a reset at a later offset.
func TestScheduleOrderingAndTrailingReset(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Profile{
			Name: "t", Seed: seed,
			CorruptEvents: 3, ReorderEvents: 2, StallEvents: 1,
			MinOffset: 100, Horizon: 400,
		}
		evs := Schedule(p, "x", 0)
		lastMut, lastReset := int64(-1), int64(-1)
		for i, ev := range evs {
			if i > 0 && evs[i].Offset <= evs[i-1].Offset {
				t.Fatalf("seed %d: offsets not strictly increasing: %v", seed, evs)
			}
			if ev.Offset < p.MinOffset {
				t.Fatalf("seed %d: event %v before MinOffset %d", seed, ev, p.MinOffset)
			}
			switch ev.Kind {
			case EvCorrupt, EvReorder:
				lastMut = ev.Offset
			case EvReset:
				lastReset = ev.Offset
			}
			_ = i
		}
		if lastMut >= 0 && lastReset <= lastMut {
			t.Fatalf("seed %d: no reset after last mutation: %v", seed, evs)
		}
	}
}

// TestVirtualClockInstant: sleeps accumulate on the virtual clock
// without consuming wall time.
func TestVirtualClockInstant(t *testing.T) {
	vc := NewVirtualClock()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		vc.Sleep(time.Second)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("1000 virtual seconds took %v wall time", wall)
	}
	if vc.Now() != 1000*time.Second {
		t.Fatalf("virtual now = %v, want 1000s", vc.Now())
	}
}

// injectorWith wires a profile with explicit events by building a
// wrapped recordConn; the events come from the profile's schedule.
func wrapOne(t *testing.T, p Profile) (*Conn, *recordConn, *Injector) {
	t.Helper()
	inner := &recordConn{}
	inj := NewInjector(p, NewVirtualClock())
	return inj.Wrap(inner, "conn"), inner, inj
}

// TestCorruptExactByte: a corrupt event flips exactly the scheduled byte
// with the scheduled mask, regardless of how the caller segments writes.
func TestCorruptExactByte(t *testing.T) {
	p := Profile{Name: "t", Seed: 7, CorruptEvents: 1, MinOffset: 64, Horizon: 128}
	evs := Schedule(p, "conn", 0)
	var corrupt Event
	for _, ev := range evs {
		if ev.Kind == EvCorrupt {
			corrupt = ev
		}
	}

	run := func(chunk int) []byte {
		// The trailing convergence reset sits at corrupt.Offset+512; stay
		// under it so every byte reaches the "wire".
		c, inner, _ := wrapOne(t, p)
		payload := make([]byte, int(corrupt.Offset)+100)
		for i := range payload {
			payload[i] = byte(i)
		}
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := c.Write(payload[off:end]); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		return inner.bytes()
	}

	whole := run(1 << 20)
	split := run(17) // deliberately misaligned segmentation
	if !bytes.Equal(whole, split) {
		t.Fatal("wire bytes depend on caller write segmentation")
	}
	want := byte(int(corrupt.Offset)) ^ byte(corrupt.Arg)
	if whole[corrupt.Offset] != want {
		t.Fatalf("byte %d = %#x, want %#x (mask %#x)", corrupt.Offset, whole[corrupt.Offset], want, corrupt.Arg)
	}
	// Neighbouring bytes untouched.
	if whole[corrupt.Offset-1] != byte(int(corrupt.Offset)-1) || whole[corrupt.Offset+1] != byte(int(corrupt.Offset)+1) {
		t.Fatal("corruption spilled into neighbouring bytes")
	}
}

// TestResetAtOffset: a reset closes the transport once the scheduled
// offset is reached, and IsInjectedReset identifies the error.
func TestResetAtOffset(t *testing.T) {
	p := Profile{Name: "t", Seed: 3, ResetEvents: 1, MinOffset: 64, Horizon: 128}
	evs := Schedule(p, "conn", 0)
	if len(evs) != 1 || evs[0].Kind != EvReset {
		t.Fatalf("schedule = %v, want single reset", evs)
	}
	c, inner, inj := wrapOne(t, p)
	payload := make([]byte, 256)
	n, err := c.Write(payload)
	if err == nil || !IsInjectedReset(err) {
		t.Fatalf("Write = %d, %v; want injected reset", n, err)
	}
	if int64(n) != evs[0].Offset {
		t.Fatalf("wrote %d bytes before reset, want %d", n, evs[0].Offset)
	}
	if !inner.closed {
		t.Fatal("inner conn not closed by reset")
	}
	if st := inj.Stats(); st.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", st.Resets)
	}
	// Next attempt of the same name runs clean (FaultedAttempts=1).
	c2, inner2, _ := &Conn{}, &recordConn{}, inj
	c2 = inj.Wrap(inner2, "conn")
	if n, err := c2.Write(payload); n != len(payload) || err != nil {
		t.Fatalf("second attempt: Write = %d, %v; want clean pass-through", n, err)
	}
}

// TestMaxChunkSplitsWrites: MaxChunk bounds the size of every segment
// reaching the inner transport without altering the byte stream.
func TestMaxChunkSplitsWrites(t *testing.T) {
	p := Profile{Name: "t", MaxChunk: 100}
	c, inner, _ := wrapOne(t, p)
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if n, err := c.Write(payload); n != len(payload) || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if len(inner.segs) < 6 {
		t.Fatalf("512 bytes with MaxChunk 100 produced %d segments", len(inner.segs))
	}
	for i, s := range inner.segs {
		if len(s) > 100 {
			t.Fatalf("segment %d has %d bytes > MaxChunk", i, len(s))
		}
	}
	if !bytes.Equal(inner.bytes(), payload) {
		t.Fatal("chunking altered the byte stream")
	}
}

// TestReorderSwapsSegments: a reorder swaps two adjacent segments inside
// one call, conserving the byte multiset.
func TestReorderSwapsSegments(t *testing.T) {
	p := Profile{Name: "t", Seed: 5, ReorderEvents: 1, ReorderSeg: 16, MinOffset: 64, Horizon: 128}
	evs := Schedule(p, "conn", 0)
	var re Event
	for _, ev := range evs {
		if ev.Kind == EvReorder {
			re = ev
		}
	}
	c, inner, inj := wrapOne(t, p)
	payload := make([]byte, int(re.Offset)+64)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := inner.bytes()
	off, seg := int(re.Offset), int(re.Arg)
	if !bytes.Equal(got[off:off+seg], payload[off+seg:off+2*seg]) ||
		!bytes.Equal(got[off+seg:off+2*seg], payload[off:off+seg]) {
		t.Fatal("segments not swapped at scheduled offset")
	}
	if !bytes.Equal(got[:off], payload[:off]) {
		t.Fatal("bytes before the reorder were altered")
	}
	if st := inj.Stats(); st.Reorders != 1 {
		t.Fatalf("Reorders = %d, want 1", st.Reorders)
	}
}

// TestScheduleDigestStable: two injectors wrapping the same connection
// sequence under the same profile report equal digests; a different
// seed changes the digest.
func TestScheduleDigestStable(t *testing.T) {
	mk := func(seed int64) string {
		p, _ := ProfileByName("lossy-reorder")
		p.Seed = seed
		inj := NewInjector(p, NewVirtualClock())
		inj.Wrap(&recordConn{}, "speaker1")
		inj.Wrap(&recordConn{}, "speaker2")
		inj.Wrap(&recordConn{}, "speaker1") // reconnect
		return inj.ScheduleDigest()
	}
	if mk(1) != mk(1) {
		t.Fatal("same seed produced different schedule digests")
	}
	if mk(1) == mk(2) {
		t.Fatal("different seeds produced identical schedule digests")
	}
}

// TestProfilesResolvable: every named profile resolves and required
// profiles exist.
func TestProfilesResolvable(t *testing.T) {
	for _, want := range []string{"clean", "lossy-reorder", "flap-reset", "stall", "slow"} {
		if _, ok := ProfileByName(want); !ok {
			t.Fatalf("profile %q missing", want)
		}
	}
	if _, ok := ProfileByName("no-such"); ok {
		t.Fatal("unknown profile resolved")
	}
	if len(ProfileNames()) != len(Profiles()) {
		t.Fatal("ProfileNames/Profiles length mismatch")
	}
}

// TestPacingOnVirtualClock: latency/bandwidth shaping advances the
// virtual clock by the expected amount without wall-time cost.
func TestPacingOnVirtualClock(t *testing.T) {
	p := Profile{Name: "t", Latency: time.Millisecond, BandwidthBPS: 1 << 20}
	vc := NewVirtualClock()
	inj := NewInjector(p, vc)
	c := inj.Wrap(&recordConn{}, "conn")
	if _, err := c.Write(make([]byte, 1<<20)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// One segment (no MaxChunk): 1ms latency + 1s of bandwidth delay.
	if got := vc.Now(); got < time.Second || got > 2*time.Second {
		t.Fatalf("virtual elapsed = %v, want ~1s", got)
	}
}
