// Package fsm implements the BGP session finite state machine of RFC 4271
// section 8 as a pure event-to-actions transducer: it owns no sockets and
// no timers. The session layer feeds it events (transport up/down, messages
// received, timer expiries) and executes the actions it returns (send a
// message, start/stop timers, tear down the connection). Keeping the FSM
// pure makes every transition deterministic and directly testable.
package fsm

import (
	"fmt"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// State is a BGP session state (RFC 4271 section 8.2.2).
type State int

// Session states.
const (
	Idle State = iota
	Connect
	Active
	OpenSent
	OpenConfirm
	Established
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "Idle"
	case Connect:
		return "Connect"
	case Active:
		return "Active"
	case OpenSent:
		return "OpenSent"
	case OpenConfirm:
		return "OpenConfirm"
	case Established:
		return "Established"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// EventType identifies an input to the FSM.
type EventType int

// FSM input events (a practical subset of the RFC 4271 section 8.1 list).
const (
	EvManualStart        EventType = iota // operator starts the session
	EvManualStop                          // operator stops the session
	EvTCPConnEstablished                  // outbound connect succeeded or inbound accepted
	EvTCPConnFails                        // transport lost or connect failed
	EvConnectRetryExpires
	EvHoldTimerExpires
	EvKeepaliveTimerExpires
	EvMsgOpen         // OPEN received (Event.Open set)
	EvMsgKeepalive    // KEEPALIVE received
	EvMsgUpdate       // UPDATE received (Event.Update set)
	EvMsgNotification // NOTIFICATION received (Event.Notif set)
	EvMsgError        // message failed to parse (Event.Err set, usually *wire.NotifyError)
	EvMsgRouteRefresh // ROUTE-REFRESH received (Event.Refresh set)
)

// String names the event type.
func (e EventType) String() string {
	names := map[EventType]string{
		EvManualStart: "ManualStart", EvManualStop: "ManualStop",
		EvTCPConnEstablished: "TCPConnEstablished", EvTCPConnFails: "TCPConnFails",
		EvConnectRetryExpires: "ConnectRetryExpires", EvHoldTimerExpires: "HoldTimerExpires",
		EvKeepaliveTimerExpires: "KeepaliveTimerExpires", EvMsgOpen: "MsgOpen",
		EvMsgKeepalive: "MsgKeepalive", EvMsgUpdate: "MsgUpdate",
		EvMsgNotification: "MsgNotification", EvMsgError: "MsgError",
		EvMsgRouteRefresh: "MsgRouteRefresh",
	}
	if n, ok := names[e]; ok {
		return n
	}
	return fmt.Sprintf("EventType(%d)", int(e))
}

// Event is one FSM input.
type Event struct {
	Type    EventType
	Open    *wire.Open
	Update  *wire.Update
	Notif   *wire.Notification
	Refresh *wire.RouteRefresh
	Err     error
}

// ActionType identifies an output of the FSM.
type ActionType int

// FSM output actions, executed by the session layer in order.
const (
	ActConnect       ActionType = iota // initiate the TCP connection
	ActSendOpen                        // send our OPEN
	ActSendKeepalive                   // send a KEEPALIVE
	ActSendNotify                      // send a NOTIFICATION (Action.Notif)
	ActCloseConn                       // close the transport
	ActStartHold                       // (re)start the hold timer with the negotiated time
	ActStopHold
	ActStartKeepalive // (re)start the keepalive interval timer
	ActStopKeepalive
	ActStartConnectRetry
	ActStopConnectRetry
	ActEstablished    // session reached Established (deliver routes now)
	ActStopped        // session left Established / terminated
	ActDeliverUpdate  // pass Action.Update to the routing layer
	ActDeliverRefresh // pass Action.Refresh to the routing layer
)

// Action is one FSM output.
type Action struct {
	Type    ActionType
	Notif   *wire.Notification
	Update  *wire.Update
	Refresh *wire.RouteRefresh
}

// Config is the local side of the session.
type Config struct {
	LocalAS  uint32
	LocalID  netaddr.Addr
	HoldTime uint16 // proposed hold time, seconds (0 disables keepalives)
	// PeerAS, when nonzero, is enforced against the peer's OPEN (the
	// effective AS: the 4-octet capability value when the peer sent one,
	// else the 2-octet OPEN field).
	PeerAS uint32
	// Passive suppresses ActConnect on start: the session waits for an
	// inbound connection (used by routers under test accepting speakers).
	Passive bool
	// Capabilities are advertised in our OPEN's optional parameters
	// (RFC 5492). The session layer encodes them.
	Capabilities []wire.Capability
}

// FSM is the state machine for one peering session.
type FSM struct {
	cfg   Config
	state State

	// Negotiated session parameters, valid from OpenConfirm onward.
	peerOpen          wire.Open
	negotiatedHold    uint16
	transitions       uint64
	lastNotifSent     *wire.Notification
	establishedEvents uint64
}

// New builds an FSM in the Idle state.
func New(cfg Config) *FSM {
	return &FSM{cfg: cfg, state: Idle}
}

// State returns the current state.
func (f *FSM) State() State { return f.state }

// PeerOpen returns the peer's OPEN message, valid once the state has
// reached OpenConfirm.
func (f *FSM) PeerOpen() wire.Open { return f.peerOpen }

// HoldTime returns the negotiated hold time in seconds (min of both
// sides), valid once the state has reached OpenConfirm. The keepalive
// interval is conventionally a third of it.
func (f *FSM) HoldTime() uint16 { return f.negotiatedHold }

// Transitions returns the number of state changes, for diagnostics.
func (f *FSM) Transitions() uint64 { return f.transitions }

func (f *FSM) to(s State) {
	if s != f.state {
		f.transitions++
	}
	f.state = s
}

// Handle consumes one event and returns the actions the session layer must
// execute, in order. Unexpected events in a state follow the RFC's rule:
// send a NOTIFICATION (FSM error), drop the connection, return to Idle.
func (f *FSM) Handle(ev Event) []Action {
	switch f.state {
	case Idle:
		return f.inIdle(ev)
	case Connect, Active:
		return f.inConnect(ev)
	case OpenSent:
		return f.inOpenSent(ev)
	case OpenConfirm:
		return f.inOpenConfirm(ev)
	case Established:
		return f.inEstablished(ev)
	}
	return nil
}

func (f *FSM) inIdle(ev Event) []Action {
	switch ev.Type {
	case EvManualStart:
		if f.cfg.Passive {
			f.to(Active)
			return nil
		}
		f.to(Connect)
		return []Action{{Type: ActConnect}, {Type: ActStartConnectRetry}}
	default:
		// All other events are ignored in Idle.
		return nil
	}
}

// inConnect covers both Connect and Active: waiting for a transport.
func (f *FSM) inConnect(ev Event) []Action {
	switch ev.Type {
	case EvTCPConnEstablished:
		f.to(OpenSent)
		return []Action{
			{Type: ActStopConnectRetry},
			{Type: ActSendOpen},
			{Type: ActStartHold}, // large initial hold until negotiated
		}
	case EvTCPConnFails:
		f.to(Active)
		return []Action{{Type: ActStartConnectRetry}}
	case EvConnectRetryExpires:
		if f.cfg.Passive {
			return nil
		}
		f.to(Connect)
		return []Action{{Type: ActConnect}, {Type: ActStartConnectRetry}}
	case EvManualStop:
		f.to(Idle)
		return []Action{{Type: ActStopConnectRetry}, {Type: ActCloseConn}}
	default:
		return f.fsmError(ev)
	}
}

func (f *FSM) inOpenSent(ev Event) []Action {
	switch ev.Type {
	case EvMsgOpen:
		if ev.Open == nil {
			return f.fsmError(ev)
		}
		if f.cfg.PeerAS != 0 && ev.Open.EffectiveAS() != f.cfg.PeerAS {
			return f.notifyAndIdle(wire.ErrCodeOpen, wire.ErrSubBadPeerAS, nil)
		}
		f.peerOpen = *ev.Open
		f.negotiatedHold = f.cfg.HoldTime
		if ev.Open.HoldTime < f.negotiatedHold {
			f.negotiatedHold = ev.Open.HoldTime
		}
		f.to(OpenConfirm)
		acts := []Action{{Type: ActSendKeepalive}}
		if f.negotiatedHold > 0 {
			acts = append(acts, Action{Type: ActStartHold}, Action{Type: ActStartKeepalive})
		} else {
			acts = append(acts, Action{Type: ActStopHold}, Action{Type: ActStopKeepalive})
		}
		return acts
	case EvMsgError:
		return f.notifyFromError(ev.Err)
	case EvMsgNotification:
		f.to(Idle)
		return []Action{{Type: ActCloseConn}}
	case EvTCPConnFails:
		f.to(Active)
		return []Action{{Type: ActStartConnectRetry}}
	case EvHoldTimerExpires:
		return f.notifyAndIdle(wire.ErrCodeHoldTimer, 0, nil)
	case EvManualStop:
		return f.cease()
	default:
		return f.fsmError(ev)
	}
}

func (f *FSM) inOpenConfirm(ev Event) []Action {
	switch ev.Type {
	case EvMsgKeepalive:
		f.to(Established)
		f.establishedEvents++
		acts := []Action{{Type: ActEstablished}}
		if f.negotiatedHold > 0 {
			acts = append(acts, Action{Type: ActStartHold})
		}
		return acts
	case EvMsgNotification:
		f.to(Idle)
		return []Action{{Type: ActCloseConn}}
	case EvMsgError:
		return f.notifyFromError(ev.Err)
	case EvHoldTimerExpires:
		return f.notifyAndIdle(wire.ErrCodeHoldTimer, 0, nil)
	case EvKeepaliveTimerExpires:
		return []Action{{Type: ActSendKeepalive}, {Type: ActStartKeepalive}}
	case EvTCPConnFails:
		f.to(Idle)
		return []Action{{Type: ActCloseConn}}
	case EvManualStop:
		return f.cease()
	default:
		return f.fsmError(ev)
	}
}

func (f *FSM) inEstablished(ev Event) []Action {
	switch ev.Type {
	case EvMsgUpdate:
		if ev.Update == nil {
			return f.fsmError(ev)
		}
		acts := []Action{{Type: ActDeliverUpdate, Update: ev.Update}}
		if f.negotiatedHold > 0 {
			acts = append(acts, Action{Type: ActStartHold})
		}
		return acts
	case EvMsgKeepalive:
		if f.negotiatedHold > 0 {
			return []Action{{Type: ActStartHold}}
		}
		return nil
	case EvMsgRouteRefresh:
		if ev.Refresh == nil {
			return f.fsmError(ev)
		}
		acts := []Action{{Type: ActDeliverRefresh, Refresh: ev.Refresh}}
		if f.negotiatedHold > 0 {
			acts = append(acts, Action{Type: ActStartHold})
		}
		return acts
	case EvKeepaliveTimerExpires:
		return []Action{{Type: ActSendKeepalive}, {Type: ActStartKeepalive}}
	case EvHoldTimerExpires:
		acts := f.notifyAndIdle(wire.ErrCodeHoldTimer, 0, nil)
		return append([]Action{{Type: ActStopped}}, acts...)
	case EvMsgNotification:
		f.to(Idle)
		return []Action{{Type: ActStopped}, {Type: ActCloseConn}}
	case EvMsgError:
		acts := f.notifyFromError(ev.Err)
		return append([]Action{{Type: ActStopped}}, acts...)
	case EvTCPConnFails:
		f.to(Idle)
		return []Action{{Type: ActStopped}, {Type: ActCloseConn}}
	case EvManualStop:
		acts := f.cease()
		return append([]Action{{Type: ActStopped}}, acts...)
	default:
		acts := f.fsmError(ev)
		return append([]Action{{Type: ActStopped}}, acts...)
	}
}

// cease sends an administrative-shutdown NOTIFICATION and returns to Idle.
func (f *FSM) cease() []Action {
	return f.notifyAndIdle(wire.ErrCodeCease, 0, nil)
}

// fsmError handles an event illegal in the current state.
func (f *FSM) fsmError(Event) []Action {
	return f.notifyAndIdle(wire.ErrCodeFSM, 0, nil)
}

// notifyFromError converts a parse failure into the NOTIFICATION the RFC
// prescribes, then tears the session down.
func (f *FSM) notifyFromError(err error) []Action {
	if ne, ok := err.(*wire.NotifyError); ok {
		return f.notifyAndIdle(ne.Code, ne.Subcode, ne.Data)
	}
	return f.notifyAndIdle(wire.ErrCodeCease, 0, nil)
}

func (f *FSM) notifyAndIdle(code, subcode uint8, data []byte) []Action {
	n := &wire.Notification{Code: code, Subcode: subcode, Data: data}
	f.lastNotifSent = n
	f.to(Idle)
	return []Action{
		{Type: ActSendNotify, Notif: n},
		{Type: ActStopHold},
		{Type: ActStopKeepalive},
		{Type: ActStopConnectRetry},
		{Type: ActCloseConn},
	}
}

// LastNotificationSent returns the most recent NOTIFICATION this side
// generated, for diagnostics and tests.
func (f *FSM) LastNotificationSent() *wire.Notification { return f.lastNotifSent }
