package fsm

import (
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func testConfig() Config {
	return Config{
		LocalAS:  65001,
		LocalID:  netaddr.MustParseAddr("1.1.1.1"),
		HoldTime: 90,
	}
}

func hasAction(acts []Action, t ActionType) bool {
	for _, a := range acts {
		if a.Type == t {
			return true
		}
	}
	return false
}

func peerOpen(as uint32, hold uint16) *wire.Open {
	o := wire.NewOpen(as, hold, netaddr.MustParseAddr("2.2.2.2"))
	return &o
}

// driveToEstablished walks the FSM through the standard handshake.
func driveToEstablished(t *testing.T, f *FSM) {
	t.Helper()
	acts := f.Handle(Event{Type: EvManualStart})
	if f.State() != Connect || !hasAction(acts, ActConnect) {
		t.Fatalf("after start: state=%v acts=%v", f.State(), acts)
	}
	acts = f.Handle(Event{Type: EvTCPConnEstablished})
	if f.State() != OpenSent || !hasAction(acts, ActSendOpen) {
		t.Fatalf("after conn: state=%v acts=%v", f.State(), acts)
	}
	acts = f.Handle(Event{Type: EvMsgOpen, Open: peerOpen(65002, 120)})
	if f.State() != OpenConfirm || !hasAction(acts, ActSendKeepalive) {
		t.Fatalf("after open: state=%v acts=%v", f.State(), acts)
	}
	acts = f.Handle(Event{Type: EvMsgKeepalive})
	if f.State() != Established || !hasAction(acts, ActEstablished) {
		t.Fatalf("after keepalive: state=%v acts=%v", f.State(), acts)
	}
}

func TestHappyPathHandshake(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	if f.HoldTime() != 90 {
		t.Errorf("negotiated hold = %d, want 90 (min of 90,120)", f.HoldTime())
	}
	if f.PeerOpen().AS != 65002 {
		t.Errorf("peer AS = %d", f.PeerOpen().AS)
	}
}

func TestHoldTimeNegotiationTakesMin(t *testing.T) {
	f := New(testConfig())
	f.Handle(Event{Type: EvManualStart})
	f.Handle(Event{Type: EvTCPConnEstablished})
	f.Handle(Event{Type: EvMsgOpen, Open: peerOpen(65002, 30)})
	if f.HoldTime() != 30 {
		t.Errorf("negotiated hold = %d, want 30", f.HoldTime())
	}
}

func TestHoldTimeZeroDisablesTimers(t *testing.T) {
	f := New(testConfig())
	f.Handle(Event{Type: EvManualStart})
	f.Handle(Event{Type: EvTCPConnEstablished})
	acts := f.Handle(Event{Type: EvMsgOpen, Open: peerOpen(65002, 0)})
	if f.HoldTime() != 0 {
		t.Fatalf("negotiated hold = %d, want 0", f.HoldTime())
	}
	if !hasAction(acts, ActStopHold) || !hasAction(acts, ActStopKeepalive) {
		t.Errorf("hold 0 should stop timers: %v", acts)
	}
	acts = f.Handle(Event{Type: EvMsgKeepalive})
	if hasAction(acts, ActStartHold) {
		t.Errorf("established with hold 0 should not start hold timer: %v", acts)
	}
}

func TestPassiveStart(t *testing.T) {
	cfg := testConfig()
	cfg.Passive = true
	f := New(cfg)
	acts := f.Handle(Event{Type: EvManualStart})
	if f.State() != Active || hasAction(acts, ActConnect) {
		t.Fatalf("passive start: state=%v acts=%v", f.State(), acts)
	}
	// Inbound connection arrives.
	acts = f.Handle(Event{Type: EvTCPConnEstablished})
	if f.State() != OpenSent || !hasAction(acts, ActSendOpen) {
		t.Fatalf("passive conn: state=%v acts=%v", f.State(), acts)
	}
	// Connect-retry expiry in passive mode stays put.
	f2 := New(cfg)
	f2.Handle(Event{Type: EvManualStart})
	f2.Handle(Event{Type: EvConnectRetryExpires})
	if f2.State() != Active {
		t.Fatalf("passive retry: state=%v", f2.State())
	}
}

func TestPeerASEnforcement(t *testing.T) {
	cfg := testConfig()
	cfg.PeerAS = 65002
	f := New(cfg)
	f.Handle(Event{Type: EvManualStart})
	f.Handle(Event{Type: EvTCPConnEstablished})
	acts := f.Handle(Event{Type: EvMsgOpen, Open: peerOpen(65099, 90)})
	if f.State() != Idle {
		t.Fatalf("wrong AS should reset to Idle, got %v", f.State())
	}
	if !hasAction(acts, ActSendNotify) {
		t.Fatalf("expected NOTIFICATION: %v", acts)
	}
	n := f.LastNotificationSent()
	if n == nil || n.Code != wire.ErrCodeOpen || n.Subcode != wire.ErrSubBadPeerAS {
		t.Fatalf("notification = %+v", n)
	}
}

func TestConnectionRetry(t *testing.T) {
	f := New(testConfig())
	f.Handle(Event{Type: EvManualStart})
	acts := f.Handle(Event{Type: EvTCPConnFails})
	if f.State() != Active || !hasAction(acts, ActStartConnectRetry) {
		t.Fatalf("conn fail: state=%v acts=%v", f.State(), acts)
	}
	acts = f.Handle(Event{Type: EvConnectRetryExpires})
	if f.State() != Connect || !hasAction(acts, ActConnect) {
		t.Fatalf("retry: state=%v acts=%v", f.State(), acts)
	}
}

func TestUpdateDelivery(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	u := &wire.Update{}
	acts := f.Handle(Event{Type: EvMsgUpdate, Update: u})
	found := false
	for _, a := range acts {
		if a.Type == ActDeliverUpdate && a.Update == u {
			found = true
		}
	}
	if !found {
		t.Fatalf("update not delivered: %v", acts)
	}
	if !hasAction(acts, ActStartHold) {
		t.Error("update should restart the hold timer")
	}
	if f.State() != Established {
		t.Errorf("state = %v", f.State())
	}
}

func TestKeepaliveRestartsHold(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	acts := f.Handle(Event{Type: EvMsgKeepalive})
	if !hasAction(acts, ActStartHold) {
		t.Errorf("keepalive should restart hold: %v", acts)
	}
}

func TestKeepaliveTimerSendsKeepalive(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	acts := f.Handle(Event{Type: EvKeepaliveTimerExpires})
	if !hasAction(acts, ActSendKeepalive) || !hasAction(acts, ActStartKeepalive) {
		t.Errorf("keepalive expiry: %v", acts)
	}
}

func TestHoldTimerExpiryTearsDown(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	acts := f.Handle(Event{Type: EvHoldTimerExpires})
	if f.State() != Idle {
		t.Fatalf("state = %v", f.State())
	}
	if !hasAction(acts, ActStopped) || !hasAction(acts, ActSendNotify) || !hasAction(acts, ActCloseConn) {
		t.Fatalf("acts = %v", acts)
	}
	if n := f.LastNotificationSent(); n == nil || n.Code != wire.ErrCodeHoldTimer {
		t.Fatalf("notification = %+v", n)
	}
}

func TestNotificationReceivedTearsDown(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	acts := f.Handle(Event{Type: EvMsgNotification, Notif: &wire.Notification{Code: wire.ErrCodeCease}})
	if f.State() != Idle || !hasAction(acts, ActStopped) || !hasAction(acts, ActCloseConn) {
		t.Fatalf("state=%v acts=%v", f.State(), acts)
	}
	// We must not send a NOTIFICATION in response to one.
	if hasAction(acts, ActSendNotify) {
		t.Error("responded to NOTIFICATION with NOTIFICATION")
	}
}

func TestMalformedUpdateSendsNotification(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	err := &wire.NotifyError{Code: wire.ErrCodeUpdate, Subcode: wire.ErrSubMalformedAttrList, Reason: "test"}
	acts := f.Handle(Event{Type: EvMsgError, Err: err})
	if f.State() != Idle {
		t.Fatalf("state = %v", f.State())
	}
	n := f.LastNotificationSent()
	if n == nil || n.Code != wire.ErrCodeUpdate || n.Subcode != wire.ErrSubMalformedAttrList {
		t.Fatalf("notification = %+v", n)
	}
	if !hasAction(acts, ActStopped) {
		t.Error("leaving Established must emit ActStopped")
	}
}

func TestManualStopFromEstablished(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	acts := f.Handle(Event{Type: EvManualStop})
	if f.State() != Idle || !hasAction(acts, ActStopped) {
		t.Fatalf("state=%v acts=%v", f.State(), acts)
	}
	if n := f.LastNotificationSent(); n == nil || n.Code != wire.ErrCodeCease {
		t.Fatalf("notification = %+v", n)
	}
}

func TestUnexpectedEventIsFSMError(t *testing.T) {
	f := New(testConfig())
	f.Handle(Event{Type: EvManualStart})
	f.Handle(Event{Type: EvTCPConnEstablished}) // OpenSent
	// An UPDATE before OPEN is an FSM error.
	acts := f.Handle(Event{Type: EvMsgUpdate, Update: &wire.Update{}})
	if f.State() != Idle {
		t.Fatalf("state = %v", f.State())
	}
	if n := f.LastNotificationSent(); n == nil || n.Code != wire.ErrCodeFSM {
		t.Fatalf("notification = %+v", n)
	}
	_ = acts
}

func TestIdleIgnoresStrayEvents(t *testing.T) {
	f := New(testConfig())
	for _, ev := range []EventType{EvMsgKeepalive, EvMsgUpdate, EvHoldTimerExpires, EvTCPConnFails} {
		if acts := f.Handle(Event{Type: ev}); len(acts) != 0 || f.State() != Idle {
			t.Errorf("event %v in Idle: acts=%v state=%v", ev, acts, f.State())
		}
	}
}

func TestTransitionsCounter(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	if f.Transitions() != 4 {
		t.Errorf("transitions = %d, want 4", f.Transitions())
	}
}

func TestStateAndEventStrings(t *testing.T) {
	for s := Idle; s <= Established; s++ {
		if s.String() == "" {
			t.Errorf("state %d has empty name", s)
		}
	}
	if State(42).String() == "" || EventType(42).String() == "" {
		t.Error("out-of-range names empty")
	}
	for e := EvManualStart; e <= EvMsgError; e++ {
		if e.String() == "" {
			t.Errorf("event %d has empty name", e)
		}
	}
}

func TestRestartAfterTeardown(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	f.Handle(Event{Type: EvHoldTimerExpires})
	if f.State() != Idle {
		t.Fatal("not idle after teardown")
	}
	// The same FSM can run a second session.
	driveToEstablished(t, f)
}

func TestRouteRefreshDelivered(t *testing.T) {
	f := New(testConfig())
	driveToEstablished(t, f)
	rr := wire.IPv4UnicastRefresh()
	acts := f.Handle(Event{Type: EvMsgRouteRefresh, Refresh: &rr})
	found := false
	for _, a := range acts {
		if a.Type == ActDeliverRefresh && a.Refresh != nil && a.Refresh.AFI == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("refresh not delivered: %v", acts)
	}
	if !hasAction(acts, ActStartHold) {
		t.Error("refresh should restart the hold timer")
	}
	if f.State() != Established {
		t.Errorf("state = %v", f.State())
	}
	// Refresh with a nil payload is an FSM error.
	f2 := New(testConfig())
	driveToEstablished(t, f2)
	f2.Handle(Event{Type: EvMsgRouteRefresh})
	if f2.State() != Idle {
		t.Errorf("nil refresh should reset: state %v", f2.State())
	}
	// Refresh before Established is an FSM error.
	f3 := New(testConfig())
	f3.Handle(Event{Type: EvManualStart})
	f3.Handle(Event{Type: EvTCPConnEstablished})
	f3.Handle(Event{Type: EvMsgRouteRefresh, Refresh: &rr})
	if f3.State() != Idle {
		t.Errorf("early refresh should reset: state %v", f3.State())
	}
}

// TestEventMatrixNeverPanics drives every event type through every state
// (reached via representative prefixes of the handshake) and checks the
// machine always lands in a defined state.
func TestEventMatrixNeverPanics(t *testing.T) {
	rr := wire.IPv4UnicastRefresh()
	buildTo := map[State]func(*FSM){
		Idle:    func(*FSM) {},
		Connect: func(f *FSM) { f.Handle(Event{Type: EvManualStart}) },
		Active: func(f *FSM) {
			f.Handle(Event{Type: EvManualStart})
			f.Handle(Event{Type: EvTCPConnFails})
		},
		OpenSent: func(f *FSM) {
			f.Handle(Event{Type: EvManualStart})
			f.Handle(Event{Type: EvTCPConnEstablished})
		},
		OpenConfirm: func(f *FSM) {
			f.Handle(Event{Type: EvManualStart})
			f.Handle(Event{Type: EvTCPConnEstablished})
			f.Handle(Event{Type: EvMsgOpen, Open: peerOpen(65002, 90)})
		},
		Established: func(f *FSM) { driveToEstablished(t, f) },
	}
	events := []Event{
		{Type: EvManualStart},
		{Type: EvManualStop},
		{Type: EvTCPConnEstablished},
		{Type: EvTCPConnFails},
		{Type: EvConnectRetryExpires},
		{Type: EvHoldTimerExpires},
		{Type: EvKeepaliveTimerExpires},
		{Type: EvMsgOpen, Open: peerOpen(65002, 90)},
		{Type: EvMsgOpen}, // nil payload
		{Type: EvMsgKeepalive},
		{Type: EvMsgUpdate, Update: &wire.Update{}},
		{Type: EvMsgUpdate}, // nil payload
		{Type: EvMsgNotification, Notif: &wire.Notification{Code: 6}},
		{Type: EvMsgError, Err: &wire.NotifyError{Code: 3, Subcode: 1}},
		{Type: EvMsgRouteRefresh, Refresh: &rr},
		{Type: EvMsgRouteRefresh}, // nil payload
		{Type: EventType(99)},     // unknown event
	}
	for state, build := range buildTo {
		for _, ev := range events {
			f := New(testConfig())
			build(f)
			if got := f.State(); got != state {
				t.Fatalf("setup for %v reached %v", state, got)
			}
			f.Handle(ev) // must not panic
			if s := f.State(); s < Idle || s > Established {
				t.Fatalf("state %v after %v in %v is out of range", s, ev.Type, state)
			}
		}
	}
}
