package fsm

import (
	"testing"

	"bgpbench/internal/wire"
)

// TestTimerEventTable pins the RFC 4271 section 8 transitions for the two
// timer-driven recovery paths a faulted transport exercises: HoldTimer
// expiry (a peer gone silent — netem's stall profile) and the
// ConnectRetry cycle (a transport that keeps dying — netem's flap-reset
// profile). Each case drives a fresh FSM along a setup path, fires one
// event, and checks the resulting state, the actions that must (and must
// not) be emitted, and any NOTIFICATION sent.
func TestTimerEventTable(t *testing.T) {
	type step struct {
		ev Event
	}
	cases := []struct {
		name    string
		passive bool
		setup   []step
		fire    Event
		want    State
		wantAct []ActionType // all must appear, in this relative order
		banAct  []ActionType // none may appear
		notify  uint8        // expected NOTIFICATION code sent, 0 = none
	}{
		{
			name:  "holdtimer/opensent-teardown",
			setup: []step{{Event{Type: EvManualStart}}, {Event{Type: EvTCPConnEstablished}}},
			fire:  Event{Type: EvHoldTimerExpires},
			want:  Idle,
			wantAct: []ActionType{
				ActSendNotify, ActStopHold, ActStopKeepalive, ActStopConnectRetry, ActCloseConn,
			},
			banAct: []ActionType{ActStopped}, // never established: no Down callback
			notify: wire.ErrCodeHoldTimer,
		},
		{
			name: "holdtimer/openconfirm-teardown",
			setup: []step{
				{Event{Type: EvManualStart}},
				{Event{Type: EvTCPConnEstablished}},
				{Event{Type: EvMsgOpen, Open: peerOpen(65002, 90)}},
			},
			fire:    Event{Type: EvHoldTimerExpires},
			want:    Idle,
			wantAct: []ActionType{ActSendNotify, ActCloseConn},
			banAct:  []ActionType{ActStopped},
			notify:  wire.ErrCodeHoldTimer,
		},
		{
			name: "holdtimer/established-teardown-with-stopped",
			setup: []step{
				{Event{Type: EvManualStart}},
				{Event{Type: EvTCPConnEstablished}},
				{Event{Type: EvMsgOpen, Open: peerOpen(65002, 90)}},
				{Event{Type: EvMsgKeepalive}},
			},
			fire: Event{Type: EvHoldTimerExpires},
			want: Idle,
			// ActStopped must precede the teardown actions so the session
			// layer fires Down before releasing the conn.
			wantAct: []ActionType{ActStopped, ActSendNotify, ActCloseConn},
			notify:  wire.ErrCodeHoldTimer,
		},
		{
			name:    "connretry/connect-fail-arms-retry",
			setup:   []step{{Event{Type: EvManualStart}}},
			fire:    Event{Type: EvTCPConnFails},
			want:    Active,
			wantAct: []ActionType{ActStartConnectRetry},
			banAct:  []ActionType{ActSendNotify, ActStopped},
		},
		{
			name:    "connretry/active-expiry-reconnects",
			setup:   []step{{Event{Type: EvManualStart}}, {Event{Type: EvTCPConnFails}}},
			fire:    Event{Type: EvConnectRetryExpires},
			want:    Connect,
			wantAct: []ActionType{ActConnect, ActStartConnectRetry},
			banAct:  []ActionType{ActSendNotify},
		},
		{
			name:    "connretry/connect-expiry-redials",
			setup:   []step{{Event{Type: EvManualStart}}},
			fire:    Event{Type: EvConnectRetryExpires},
			want:    Connect,
			wantAct: []ActionType{ActConnect, ActStartConnectRetry},
		},
		{
			name:    "connretry/passive-expiry-stays-active",
			passive: true,
			setup:   []step{{Event{Type: EvManualStart}}},
			fire:    Event{Type: EvConnectRetryExpires},
			want:    Active,
			banAct:  []ActionType{ActConnect},
		},
		{
			name:  "connretry/opensent-fail-back-to-active",
			setup: []step{{Event{Type: EvManualStart}}, {Event{Type: EvTCPConnEstablished}}},
			fire:  Event{Type: EvTCPConnFails},
			want:  Active,
			// Mid-OPEN transport loss re-arms the retry timer; the FSM does
			// not emit ActCloseConn here, so the session layer must drop the
			// dead conn itself (the regression fixed in faultrecovery_test).
			wantAct: []ActionType{ActStartConnectRetry},
			banAct:  []ActionType{ActSendNotify, ActStopped},
		},
		{
			name: "connretry/established-fail-is-terminal",
			setup: []step{
				{Event{Type: EvManualStart}},
				{Event{Type: EvTCPConnEstablished}},
				{Event{Type: EvMsgOpen, Open: peerOpen(65002, 90)}},
				{Event{Type: EvMsgKeepalive}},
			},
			fire:    Event{Type: EvTCPConnFails},
			want:    Idle,
			wantAct: []ActionType{ActStopped, ActCloseConn},
			banAct:  []ActionType{ActSendNotify}, // the transport is gone: nothing to notify
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Passive = c.passive
			f := New(cfg)
			for _, s := range c.setup {
				f.Handle(s.ev)
			}
			sentBefore := f.LastNotificationSent()
			acts := f.Handle(c.fire)
			if f.State() != c.want {
				t.Fatalf("state = %v, want %v (acts %v)", f.State(), c.want, acts)
			}
			pos := -1
			for _, want := range c.wantAct {
				found := -1
				for i, a := range acts {
					if a.Type == want && i > pos {
						found = i
						break
					}
				}
				if found < 0 {
					t.Fatalf("action %v missing or out of order in %v", want, acts)
				}
				pos = found
			}
			for _, ban := range c.banAct {
				if hasAction(acts, ban) {
					t.Fatalf("forbidden action %v in %v", ban, acts)
				}
			}
			switch n := f.LastNotificationSent(); {
			case c.notify == 0:
				if hasAction(acts, ActSendNotify) {
					t.Fatalf("unexpected NOTIFICATION: %v", acts)
				}
			case n == nil || n == sentBefore:
				t.Fatalf("no NOTIFICATION sent, want code %d", c.notify)
			case n.Code != c.notify:
				t.Fatalf("NOTIFICATION code = %d, want %d", n.Code, c.notify)
			}
		})
	}
}

// TestConnectRetryCycleRepeats drives the Connect <-> Active loop through
// several failed attempts — the FSM-level shape of a netem flap-reset
// profile with FaultedAttempts > 1 — and checks the machine re-arms the
// retry timer every round and still establishes once a dial survives.
func TestConnectRetryCycleRepeats(t *testing.T) {
	f := New(testConfig())
	f.Handle(Event{Type: EvManualStart})
	for round := 0; round < 4; round++ {
		acts := f.Handle(Event{Type: EvTCPConnFails})
		if f.State() != Active || !hasAction(acts, ActStartConnectRetry) {
			t.Fatalf("round %d fail: state=%v acts=%v", round, f.State(), acts)
		}
		acts = f.Handle(Event{Type: EvConnectRetryExpires})
		if f.State() != Connect || !hasAction(acts, ActConnect) || !hasAction(acts, ActStartConnectRetry) {
			t.Fatalf("round %d retry: state=%v acts=%v", round, f.State(), acts)
		}
	}
	// A surviving dial completes the handshake from Connect.
	f.Handle(Event{Type: EvTCPConnEstablished})
	f.Handle(Event{Type: EvMsgOpen, Open: peerOpen(65002, 90)})
	f.Handle(Event{Type: EvMsgKeepalive})
	if f.State() != Established {
		t.Fatalf("after clean dial: state = %v", f.State())
	}
}
