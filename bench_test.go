// Package bgpbench's root benchmark suite regenerates every table and
// figure of "Benchmarking BGP Routers" (IISWC 2007) as testing.B targets,
// plus micro-benchmarks of the substrates (wire codec, FIB engines,
// decision process, forwarding path). Each table/figure benchmark reports
// the paper's metric — transactions per second — via b.ReportMetric.
//
//	go test -bench=. -benchmem
//
// Mapping to the paper:
//
//	BenchmarkTable3/*   -> Table III (8 scenarios x 4 systems, no cross-traffic)
//	BenchmarkFig3/*     -> Figure 3  (Scenario 6 traces per system)
//	BenchmarkFig4/*     -> Figure 4  (Pentium III, Scenarios 1 vs 2)
//	BenchmarkFig5/*     -> Figure 5  (tps under cross-traffic, per system)
//	BenchmarkFig6/*     -> Figure 6  (Pentium III Scenario 8, 0 vs 300 Mbps)
//	BenchmarkLive/*     -> the same 8 scenarios against the live Go router
package bgpbench

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"bgpbench/internal/aggregate"
	"bgpbench/internal/damping"
	"bgpbench/internal/dataplane"
	"bgpbench/internal/mrt"

	"bgpbench/internal/bench"
	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/forward"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/packet"
	"bgpbench/internal/platform"
	"bgpbench/internal/rib"
	"bgpbench/internal/wire"
)

// benchTable keeps modeled runs short enough for repeated iterations
// while remaining large enough that per-phase timing dominates quantum
// granularity.
const benchTable = 2000

func runModeled(b *testing.B, system string, scenario int, crossMbps float64) {
	b.Helper()
	sys, ok := platform.SystemByName(system)
	if !ok {
		b.Fatalf("unknown system %q", system)
	}
	scn, err := bench.ScenarioByNum(scenario)
	if err != nil {
		b.Fatal(err)
	}
	var tps float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunModeled(sys, scn, benchTable, platform.CrossTraffic{Mbps: crossMbps})
		if err != nil {
			b.Fatal(err)
		}
		tps = res.TPS
	}
	b.ReportMetric(tps, "tps")
}

// BenchmarkTable3 regenerates each cell of Table III.
func BenchmarkTable3(b *testing.B) {
	for _, system := range bench.PaperSystemNames {
		for num := 1; num <= 8; num++ {
			b.Run(fmt.Sprintf("%s/Scenario%d", system, num), func(b *testing.B) {
				runModeled(b, system, num, 0)
			})
		}
	}
}

// BenchmarkFig3 runs Scenario 6 with full tracing on the three systems of
// Figure 3.
func BenchmarkFig3(b *testing.B) {
	for _, system := range []string{"PentiumIII", "Xeon", "IXP2400"} {
		b.Run(system, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig3(benchTable, system); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4 runs the Pentium III packet-size comparison of Figure 4.
func BenchmarkFig4(b *testing.B) {
	for _, num := range []int{1, 2} {
		b.Run(fmt.Sprintf("Scenario%d", num), func(b *testing.B) {
			runModeled(b, "PentiumIII", num, 0)
		})
	}
}

// BenchmarkFig5 samples Figure 5's cross-traffic sweep: each system's
// Scenario 2 point at a mid-range load.
func BenchmarkFig5(b *testing.B) {
	for _, system := range bench.PaperSystemNames {
		sys, _ := platform.SystemByName(system)
		cross := sys.ForwardCapMbps / 2
		b.Run(fmt.Sprintf("%s/cross%.0f", system, cross), func(b *testing.B) {
			runModeled(b, system, 2, cross)
		})
	}
}

// BenchmarkFig6 runs Figure 6's two operating points.
func BenchmarkFig6(b *testing.B) {
	for _, cross := range []float64{0, 300} {
		b.Run(fmt.Sprintf("cross%.0f", cross), func(b *testing.B) {
			runModeled(b, "PentiumIII", 8, cross)
		})
	}
}

// BenchmarkLive runs the eight scenarios against the live Go BGP router
// over loopback TCP — the "fifth system".
func BenchmarkLive(b *testing.B) {
	for num := 1; num <= 8; num++ {
		b.Run(fmt.Sprintf("Scenario%d", num), func(b *testing.B) {
			scn, err := bench.ScenarioByNum(num)
			if err != nil {
				b.Fatal(err)
			}
			var tps float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunLive(scn, bench.LiveConfig{TableSize: benchTable, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				tps = res.TPS
			}
			b.ReportMetric(tps, "tps")
		})
	}
}

// BenchmarkLiveShards sweeps the decision-worker count on Scenario 2
// (start-up with large packets) — the "scaling the fifth system"
// experiment the paper's four single-process systems could not run.
func BenchmarkLiveShards(b *testing.B) {
	for _, shards := range []int{1, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("shards%d", shards)
		if shards == 0 {
			name = "shardsGOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			scn, _ := bench.ScenarioByNum(2)
			var tps float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunLive(scn, bench.LiveConfig{
					TableSize: 50000, Seed: 1, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				tps = res.TPS
			}
			b.ReportMetric(tps, "tps")
		})
	}
}

// BenchmarkLiveCrossTraffic is the live analogue of Figure 5: Scenario 2
// with goroutines saturating the shared forwarding engine.
func BenchmarkLiveCrossTraffic(b *testing.B) {
	for _, workers := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			scn, _ := bench.ScenarioByNum(2)
			var tps float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunLive(scn, bench.LiveConfig{
					TableSize: benchTable, Seed: 1, CrossWorkers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				tps = res.TPS
			}
			b.ReportMetric(tps, "tps")
		})
	}
}

// --- Substrate micro-benchmarks ---

func benchUpdate(nlri int) wire.Update {
	u := wire.Update{
		Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 100, 200, 300), netaddr.MustParseAddr("10.0.0.1")),
	}
	for i := 0; i < nlri; i++ {
		u.NLRI = append(u.NLRI, netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<8), 24))
	}
	return u
}

// BenchmarkWireMarshalUpdate measures UPDATE encoding at both packet sizes.
func BenchmarkWireMarshalUpdate(b *testing.B) {
	for _, n := range []int{1, 500} {
		b.Run(fmt.Sprintf("nlri%d", n), func(b *testing.B) {
			u := benchUpdate(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Marshal(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireParseUpdate measures UPDATE decoding at both packet sizes.
func BenchmarkWireParseUpdate(b *testing.B) {
	for _, n := range []int{1, 500} {
		b.Run(fmt.Sprintf("nlri%d", n), func(b *testing.B) {
			buf, err := wire.Marshal(benchUpdate(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.Parse(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFIBLookup compares the LPM engines on a 100k-prefix table.
func BenchmarkFIBLookup(b *testing.B) {
	table := core.GenerateTable(core.TableGenConfig{N: 100000, Seed: 5})
	for _, name := range []string{"binary", "patricia", "hashlen", "poptrie"} {
		b.Run(name, func(b *testing.B) {
			eng, err := fib.NewEngine(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range table {
				eng.Insert(r.Prefix, fib.Entry{Port: 1})
			}
			rng := rand.New(rand.NewSource(1))
			addrs := make([]netaddr.Addr, 4096)
			for i := range addrs {
				addrs[i] = table[rng.Intn(len(table))].Prefix.Addr()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Lookup(addrs[i%len(addrs)])
			}
		})
	}
}

// BenchmarkFIBUpdate measures insert+delete churn per engine.
func BenchmarkFIBUpdate(b *testing.B) {
	table := core.GenerateTable(core.TableGenConfig{N: 50000, Seed: 6})
	for _, name := range []string{"binary", "patricia", "hashlen", "poptrie"} {
		b.Run(name, func(b *testing.B) {
			eng, err := fib.NewEngine(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range table {
				eng.Insert(r.Prefix, fib.Entry{Port: 1})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := table[i%len(table)]
				eng.Delete(r.Prefix)
				eng.Insert(r.Prefix, fib.Entry{Port: 2})
			}
		})
	}
}

// BenchmarkDecisionProcess measures best-path selection across candidate
// set sizes.
func BenchmarkDecisionProcess(b *testing.B) {
	for _, peers := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("candidates%d", peers), func(b *testing.B) {
			cands := make([]rib.Candidate, peers)
			for i := range cands {
				cands[i] = rib.Candidate{
					Peer: rib.PeerInfo{
						Addr: netaddr.AddrFromV4(uint32(i + 1)), ID: netaddr.AddrFromV4(uint32(i + 1)),
						AS: uint32(i + 100), EBGP: true,
					},
					Attrs: attrsPtr(wire.NewPathAttrs(wire.OriginIGP,
						wire.NewASPath(uint32(i+100), uint32(i+200), uint32(i%3+1)),
						netaddr.AddrFromV4(uint32(i+1)))),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rib.Best(cands)
			}
		})
	}
}

// BenchmarkRIBChurn measures the full announce path through the RIB.
func BenchmarkRIBChurn(b *testing.B) {
	r := rib.New()
	p1 := rib.PeerInfo{Addr: netaddr.AddrFromV4(1), ID: netaddr.AddrFromV4(1), AS: 65001, EBGP: true}
	p2 := rib.PeerInfo{Addr: netaddr.AddrFromV4(2), ID: netaddr.AddrFromV4(2), AS: 65002, EBGP: true}
	r.AddPeer(p1)
	r.AddPeer(p2)
	short := attrsPtr(wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 1), netaddr.AddrFromV4(1)))
	long := attrsPtr(wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65002, 1, 2, 3), netaddr.AddrFromV4(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i%4096)<<12), 20)
		r.Announce(p1.Addr, p, short)
		r.Announce(p2.Addr, p, long)
	}
}

func attrsPtr(a wire.PathAttrs) *wire.PathAttrs { return &a }

// BenchmarkForwarding measures the RFC 1812 per-packet path (validate,
// TTL, checksum, LPM) against a 100k-entry FIB.
func BenchmarkForwarding(b *testing.B) {
	table := fib.NewTable(fib.NewPatricia())
	routes := core.GenerateTable(core.TableGenConfig{N: 100000, Seed: 8})
	for _, r := range routes {
		table.Insert(r.Prefix, fib.Entry{NextHop: netaddr.AddrFromV4(1), Port: 1})
	}
	eng := forward.New(table, forward.DiscardEgress)
	pkts := make([][]byte, 256)
	for i := range pkts {
		pkts[i] = packet.Marshal(packet.Header{
			TTL: 64, Protocol: 17,
			Src: netaddr.AddrFrom4(10, 0, 0, 1),
			Dst: routes[i*97%len(routes)].Prefix.Addr(),
		}, make([]byte, 64))
	}
	b.SetBytes(int64(len(pkts[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := pkts[i%len(pkts)]
		pkt[8] = 64 // restore TTL consumed by the previous pass
		pkt[10], pkt[11] = 0, 0
		cs := packet.Checksum(pkt[:packet.MinHeaderLen])
		pkt[10], pkt[11] = byte(cs>>8), byte(cs)
		eng.Process(pkt)
	}
}

// BenchmarkTableGen measures workload generation.
func BenchmarkTableGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.GenerateTable(core.TableGenConfig{N: 10000, Seed: int64(i)})
	}
}

// BenchmarkDataplane measures the parallel forwarding plane's per-packet
// cost at several worker counts (the IXP2400 packet-processor analogue).
func BenchmarkDataplane(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			table := fib.NewTable(fib.NewPatricia())
			routes := core.GenerateTable(core.TableGenConfig{N: 50000, Seed: 3})
			for _, r := range routes {
				table.Insert(r.Prefix, fib.Entry{NextHop: netaddr.AddrFromV4(1), Port: 1})
			}
			plane, err := dataplane.New(dataplane.Config{
				Workers: workers, QueueDepth: 65536, FIB: table,
			})
			if err != nil {
				b.Fatal(err)
			}
			plane.Start()
			pkts := make([][]byte, 512)
			for i := range pkts {
				pkts[i] = packet.Marshal(packet.Header{
					TTL: 64, Protocol: 17,
					Src: netaddr.AddrFrom4(10, 0, 0, 1),
					Dst: routes[i*83%len(routes)].Prefix.Addr(),
				}, make([]byte, 64))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt := pkts[i%len(pkts)]
				fresh := append([]byte(nil), pkt...) // plane owns injected buffers
				for !plane.Inject(fresh) {
				}
			}
			b.StopTimer()
			plane.Stop()
		})
	}
}

// BenchmarkAggregate measures CIDR aggregation over a realistic table.
func BenchmarkAggregate(b *testing.B) {
	routes := core.GenerateTable(core.TableGenConfig{N: 20000, Seed: 4})
	in := make([]aggregate.Route, len(routes))
	for i, r := range routes {
		in[i] = aggregate.Route{
			Prefix: r.Prefix,
			Attrs:  wire.NewPathAttrs(wire.OriginIGP, r.Path, netaddr.AddrFrom4(10, 0, 0, 1)),
		}
	}
	cfg := aggregate.NewConfig(65000, netaddr.AddrFrom4(10, 0, 0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggregate.Aggregate(in, cfg)
	}
}

// BenchmarkDamping measures the flap damper's per-event cost.
func BenchmarkDamping(b *testing.B) {
	d := damping.New(damping.Config{}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Flap(netaddr.AddrFromV4(uint32(i%64)), netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i%4096)<<12), 20))
	}
}

// BenchmarkMRTRoundTrip measures table dump serialization.
func BenchmarkMRTRoundTrip(b *testing.B) {
	routes := core.GenerateTable(core.TableGenConfig{N: 5000, Seed: 5, FirstAS: 65001})
	tbl := &mrt.Table{
		CollectorID: netaddr.AddrFrom4(10, 0, 0, 1),
		ViewName:    "bench",
		Peers:       []mrt.Peer{{ID: netaddr.AddrFromV4(1), Addr: netaddr.AddrFromV4(1), AS: 65001}},
	}
	for _, r := range routes {
		tbl.Prefixes = append(tbl.Prefixes, mrt.Prefix{
			Prefix: r.Prefix,
			Entries: []mrt.RIBEntry{{
				Attrs: wire.NewPathAttrs(wire.OriginIGP, r.Path, netaddr.AddrFrom4(10, 0, 0, 1)),
			}},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := mrt.Write(&buf, tbl, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := mrt.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWormStormPoint measures one open-loop storm evaluation (the
// unit of the worm survivability search).
func BenchmarkWormStormPoint(b *testing.B) {
	sys, _ := platform.SystemByName("Xeon")
	for i := 0; i < b.N; i++ {
		sim := platform.NewSim(sys)
		if _, err := sim.RunOpenLoop(platform.OpenLoopSpec{
			Kind: platform.KindReplace, PrefixesPerMsg: 1,
			MsgsPerSec: 1000, Duration: 10,
		}, platform.CrossTraffic{}); err != nil {
			b.Fatal(err)
		}
	}
}
