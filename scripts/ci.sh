#!/bin/sh
# CI gate: identical to `make check`, for environments without make.
set -eux

go build ./...
go vet ./...
go test -race ./internal/core/... ./internal/session/...
# Fault-injection conformance gate under the race detector: one
# representative scenario (flap-reset, N=1 vs N=4 shards) plus replay
# determinism.
BGPBENCH_CONFORMANCE_GATE=1 go test -race \
	-run 'TestConformanceGate|TestConformanceReplayDeterminism' ./internal/bench/
# Hot-path microbenchmark smoke: one iteration so the dispatch/process
# benchmarks can never bit-rot.
go test -run='^$' -bench 'BenchmarkDispatchUpdate|BenchmarkProcessUpdate' \
	-benchtime=1x ./internal/core/
go test ./...
