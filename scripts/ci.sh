#!/bin/sh
# CI gate: identical to `make check`, for environments without make.
set -eux

go build ./...
# Formatting gate: fail with the offending file list.
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt_out" >&2
	exit 1
fi
# Default vet suite, then an explicit pass pinning the checks the
# concurrency code leans on hardest.
go vet ./...
go vet -copylocks -unusedresult ./...
# Project-invariant static analyzers (see internal/analysis) against
# the audited-findings ledger: a new finding or a stale baseline entry
# fails the gate; audited findings stay visible in the SARIF log, which
# is left under artifacts/ for code-scanning upload.
mkdir -p artifacts
if ! go run ./cmd/bgplint -sarif -baseline lint/baseline.json ./... > artifacts/bgplint.sarif; then
	echo "bgplint gate failed (baseline drift or new findings):" >&2
	go run ./cmd/bgplint -baseline lint/baseline.json ./... >&2 || true
	exit 1
fi
# Includes the fib lookup-under-churn tests (IPv4 and IPv6) gating the
# lock-free snapshot read path.
go test -race ./internal/core/... ./internal/session/... ./internal/fib/...
# Fault-injection conformance gate under the race detector: one
# representative scenario (flap-reset, N=1 vs N=4 shards), replay
# determinism, the many-peer update-group equivalence gate, and the
# dual-stack digest matrix (v4/v6/dual with IPv6 NLRI end-to-end).
BGPBENCH_CONFORMANCE_GATE=1 go test -race \
	-run 'TestConformanceGate|TestConformanceManyPeerGate|TestConformanceReplayDeterminism|TestConformanceDualStackGate' ./internal/bench/
# Hot-path microbenchmark smoke: one iteration so the dispatch/process
# benchmarks can never bit-rot.
go test -run='^$' -bench 'BenchmarkDispatchUpdate|BenchmarkProcessUpdate|BenchmarkEmitGrouped' \
	-benchtime=1x ./internal/core/
BGPBENCH_LOOKUP_N=50000 go test -run='^$' \
	-bench 'BenchmarkLookup$|BenchmarkLookupV6$|BenchmarkLookupChurn' \
	-benchtime=1x ./internal/fib/
go test ./...
