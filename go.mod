module bgpbench

go 1.22
