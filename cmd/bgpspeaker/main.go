// Command bgpspeaker is a standalone benchmark BGP speaker: it connects
// to a router under test, injects a synthetic routing table (and
// optionally withdraws it again), and reports the achieved transaction
// rate. It speaks standard BGP-4 and works against any router, not only
// bgprouterd.
//
//	bgpspeaker -target 127.0.0.1:1790 -as 65001 -id 1.1.1.1 -n 20000 -permsg 500
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/mrt"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/speaker"
	"bgpbench/internal/wire"
)

func main() {
	target := flag.String("target", "127.0.0.1:1790", "router under test, host:port")
	as := flag.Uint("as", 65001, "local autonomous system number")
	id := flag.String("id", "1.1.1.1", "BGP identifier (IPv4), also used as next hop")
	n := flag.Int("n", 20000, "number of prefixes to announce")
	perMsg := flag.Int("permsg", 1, "prefixes per UPDATE (1 = small packets, 500 = large)")
	seed := flag.Int64("seed", 1, "workload seed")
	uniform := flag.Bool("uniform", true, "share one AS path across all routes (enables large-packet packing)")
	withdraw := flag.Bool("withdraw", false, "withdraw the table again after announcing")
	linger := flag.Duration("linger", 3*time.Second, "time to keep the session up after sending")
	dump := flag.String("dump", "", "write the generated table as an MRT TABLE_DUMP_V2 file and exit")
	load := flag.String("load", "", "announce routes from an MRT TABLE_DUMP_V2 file instead of generating them")
	flag.Parse()

	localID, err := netaddr.ParseAddr(*id)
	if err != nil {
		fatal(err)
	}

	if *dump != "" {
		if err := dumpTable(*dump, *n, *seed, uint32(*as), localID); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-prefix MRT dump to %s\n", *n, *dump)
		return
	}
	sp := speaker.New(speaker.Config{
		AS:     uint32(*as),
		ID:     localID,
		Target: *target,
	})
	if err := sp.Connect(15 * time.Second); err != nil {
		fatal(err)
	}
	defer sp.Stop()
	fmt.Printf("bgpspeaker: session established with %s (AS %d)\n", *target, *as)

	var table []core.Route
	if *load != "" {
		table, err = loadTable(*load)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d prefixes from %s\n", len(table), *load)
	} else {
		table = core.GenerateTable(core.TableGenConfig{N: *n, Seed: *seed, FirstAS: uint32(*as)})
		if *uniform {
			table = core.UniformPath(table, wire.NewASPath(uint32(*as), 100, 101, 102))
		}
	}

	start := time.Now()
	if err := sp.Announce(table, *perMsg); err != nil {
		fatal(err)
	}
	dur := time.Since(start)
	fmt.Printf("announced %d prefixes in %v (%.0f prefixes/s wire rate)\n",
		len(table), dur.Round(time.Millisecond), float64(len(table))/dur.Seconds())

	if *withdraw {
		start = time.Now()
		if err := sp.Withdraw(table, *perMsg); err != nil {
			fatal(err)
		}
		dur = time.Since(start)
		fmt.Printf("withdrew %d prefixes in %v (%.0f prefixes/s wire rate)\n",
			len(table), dur.Round(time.Millisecond), float64(len(table))/dur.Seconds())
	}

	// Keep the session alive so the router finishes processing; report
	// anything it advertises back to us.
	time.Sleep(*linger)
	fmt.Printf("received from router: %d updates, %d prefixes, %d withdrawals\n",
		sp.UpdatesReceived(), sp.PrefixesReceived(), sp.WithdrawalsReceived())
}

// dumpTable writes a freshly generated table as an MRT file.
func dumpTable(path string, n int, seed int64, as uint32, id netaddr.Addr) error {
	routes := core.GenerateTable(core.TableGenConfig{N: n, Seed: seed, FirstAS: as})
	tbl := &mrt.Table{
		CollectorID: id,
		ViewName:    "bgpspeaker",
		Peers:       []mrt.Peer{{ID: id, Addr: id, AS: as}},
	}
	for _, r := range routes {
		tbl.Prefixes = append(tbl.Prefixes, mrt.Prefix{
			Prefix: r.Prefix,
			Entries: []mrt.RIBEntry{{
				Attrs: wire.NewPathAttrs(wire.OriginIGP, r.Path, id),
			}},
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mrt.Write(f, tbl, uint32(time.Now().Unix()))
}

// loadTable reads routes (first path per prefix) from an MRT file.
func loadTable(path string) ([]core.Route, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tbl, err := mrt.Read(f)
	if err != nil {
		return nil, err
	}
	var out []core.Route
	for _, p := range tbl.Prefixes {
		if len(p.Entries) == 0 {
			continue
		}
		out = append(out, core.Route{Prefix: p.Prefix, Path: p.Entries[0].Attrs.ASPath})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgpspeaker:", err)
	os.Exit(1)
}
