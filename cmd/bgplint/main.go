// Command bgplint runs the repository's custom static analyzers: the
// determinism, pooling, interning, locking, and error-handling
// invariants that conventional vet checks cannot see. It is built on
// the standard library's go/ast and go/types only and is wired into
// `make check` and scripts/ci.sh; a non-zero exit fails the gate.
//
// Usage:
//
//	bgplint [-json] [-C dir] [packages]
package main

import (
	"os"

	"bgpbench/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
