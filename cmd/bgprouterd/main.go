// Command bgprouterd runs this repository's live BGP router as a
// standalone daemon: it listens for BGP sessions, maintains RIBs and a
// FIB, and prints periodic statistics. Point benchmark speakers (or any
// RFC 4271 implementation) at it.
//
//	bgprouterd -listen 127.0.0.1:1790 -as 65000 -id 10.0.0.1 -neighbors 65001,65002
//	bgprouterd -config router.conf
//	bgprouterd -chaos lossy-reorder -chaos-seed 7   # fault-injected listener
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bgpbench/internal/config"
	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
	"bgpbench/internal/status"
)

func main() {
	configPath := flag.String("config", "", "configuration file (overrides the individual flags; see internal/config)")
	listen := flag.String("listen", "127.0.0.1:1790", "address to accept BGP sessions on")
	as := flag.Uint("as", 65000, "local autonomous system number")
	id := flag.String("id", "10.0.0.1", "BGP identifier (IPv4)")
	neighbors := flag.String("neighbors", "65001,65002", "comma-separated neighbour AS numbers to accept")
	fib := flag.String("fib", "patricia", "FIB engine: linear, binary, patricia, hashlen, poptrie")
	shards := flag.Int("shards", 0, "decision-worker shard count (0 = GOMAXPROCS)")
	batch := flag.Int("batch-updates", 0, "max UPDATEs coalesced per shard dispatch (0 = default 256, negative = disable batching)")
	batchDelay := flag.Duration("batch-delay", 0, "max time an UPDATE may wait in a forming batch (0 = default 200us, negative = flush when the session idles)")
	updateGroups := flag.Bool("update-groups", false, "bucket peers by export policy into update groups: compute and marshal each emission run once per group and fan the bytes out (route-server mode; also the 'update-groups' config directive)")
	statsEvery := flag.Duration("stats", 5*time.Second, "statistics print interval (0 disables)")
	httpAddr := flag.String("http", "", "serve /status, /fib, /metrics on this address (empty disables)")
	chaos := flag.String("chaos", "", "wrap the BGP listener in this netem fault profile (empty disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed for -chaos")
	flag.Parse()

	var cfg core.Config
	if *configPath != "" {
		text, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.Parse(string(text))
		if err != nil {
			fatal(err)
		}
	} else {
		routerID, err := netaddr.ParseAddr(*id)
		if err != nil {
			fatal(err)
		}
		var ncfgs []core.NeighborConfig
		for _, part := range strings.Split(*neighbors, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				fatal(fmt.Errorf("bad neighbour AS %q: %v", part, err))
			}
			ncfgs = append(ncfgs, core.NeighborConfig{AS: uint32(n)})
		}
		cfg = core.Config{
			AS:              uint32(*as),
			ID:              routerID,
			ListenAddr:      *listen,
			Neighbors:       ncfgs,
			FIBEngine:       *fib,
			Shards:          *shards,
			BatchMaxUpdates: *batch,
			BatchMaxDelay:   *batchDelay,
			UpdateGroups:    *updateGroups,
		}
	}
	if len(cfg.Neighbors) == 0 {
		fatal(fmt.Errorf("no neighbours configured"))
	}

	// Fault injection on every accepted session: the daemon runs on the
	// real clock, so latency/stall shaping costs wall time.
	var inj *netem.Injector
	if *chaos != "" {
		profile, ok := netem.ProfileByName(*chaos)
		if !ok {
			fatal(fmt.Errorf("unknown fault profile %q (known: %s)",
				*chaos, strings.Join(netem.ProfileNames(), ", ")))
		}
		profile.Seed = *chaosSeed
		inj = netem.NewInjector(profile, netem.NewRealClock())
		cfg.ListenWrap = func(ln net.Listener) net.Listener {
			return inj.WrapListener(ln, "bgprouterd")
		}
	}

	router, err := core.NewRouter(cfg)
	if err != nil {
		fatal(err)
	}
	if err := router.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("bgprouterd: AS %d, ID %s, listening on %s, %d neighbours, fib=%s\n",
		cfg.AS, cfg.ID, router.ListenAddr(), len(cfg.Neighbors), cfg.FIBEngine)
	bu, bd := router.BatchLimits()
	fmt.Printf("bgprouterd: %d shards, dispatch batching %d updates / %v\n",
		router.Shards(), bu, bd)
	if router.UpdateGroupsEnabled() {
		fmt.Println("bgprouterd: update groups enabled (bgp_update_group_* counters on /metrics)")
	}
	if inj != nil {
		fmt.Printf("bgprouterd: chaos profile %q, seed %d (netem_* counters on /metrics)\n",
			*chaos, *chaosSeed)
	}
	if *httpAddr != "" {
		go func() {
			fmt.Printf("bgprouterd: status endpoint on http://%s/status\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, status.HandlerWithFaults(router, cfg.AS, inj)); err != nil {
				fmt.Fprintln(os.Stderr, "bgprouterd: http:", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	lastTx := uint64(0)
	lastAt := time.Now()
	for {
		select {
		case <-stop:
			fmt.Println("\nbgprouterd: shutting down")
			router.Stop()
			return
		case <-tick:
			tx := router.Transactions()
			now := time.Now()
			rate := float64(tx-lastTx) / now.Sub(lastAt).Seconds()
			lastTx, lastAt = tx, now
			fmt.Printf("stats: transactions=%d (%.0f/s) fib=%d entries (%d changes)\n",
				tx, rate, router.FIB().Len(), router.FIBChanges())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgprouterd:", err)
	os.Exit(1)
}
