// Command bgpbench regenerates every table and figure of "Benchmarking
// BGP Routers" (IISWC 2007) on the modeled substrate, and runs the same
// eight-scenario benchmark against this repository's live Go BGP router.
//
// Usage:
//
//	bgpbench table3  [-n prefixes]
//	bgpbench fig3    [-n prefixes] [-csv dir]
//	bgpbench fig4    [-n prefixes] [-csv dir]
//	bgpbench fig5    [-n prefixes] [-step mbps] [-csv dir]
//	bgpbench fig6    [-n prefixes] [-cross mbps] [-csv dir]
//	bgpbench scenario -num N [-system NAME] [-n prefixes] [-cross mbps]
//	bgpbench live    [-n prefixes] [-num N] [-afi v4|v6|dual] [-fib engine] [-cpus N] [-crossworkers K] [-crosspps R] [-shards LIST] [-batch N] [-batchdelay D] [-pprof addr] [-json file] [-merge file]
//	bgpbench fanout  [-n prefixes] [-afi v4|v6|dual] [-table uniform|dfz] [-peers LIST] [-groups G] [-shards N] [-grouped-only] [-cpus N] [-json file] [-merge file]
//	bgpbench lookup  [-n prefixes] [-engines LIST] [-readers K] [-churn N] [-duration D] [-cpus N] [-json file]
//	bgpbench livesweep [-n prefixes] [-num N] [-cpus N]
//	bgpbench chaos   [-n prefixes] [-num N] [-profiles LIST] [-seed S] [-shards LIST] [-json file]
//	bgpbench worm
//	bgpbench ablate  [-n prefixes]
//	bgpbench mrt <file>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"bgpbench/internal/bench"
	"bgpbench/internal/fib"
	"bgpbench/internal/mrt"
	"bgpbench/internal/netem"
	"bgpbench/internal/platform"
	"bgpbench/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table3":
		err = cmdTable3(args)
	case "fig3":
		err = cmdFig3(args)
	case "fig4":
		err = cmdFig4(args)
	case "fig5":
		err = cmdFig5(args)
	case "fig6":
		err = cmdFig6(args)
	case "scenario":
		err = cmdScenario(args)
	case "live":
		err = cmdLive(args)
	case "fanout":
		err = cmdFanout(args)
	case "lookup":
		err = cmdLookup(args)
	case "ablate":
		err = cmdAblate(args)
	case "worm":
		err = cmdWorm(args)
	case "livesweep":
		err = cmdLiveSweep(args)
	case "chaos":
		err = cmdChaos(args)
	case "mrt":
		err = cmdMRT(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bgpbench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bgpbench - reproduce "Benchmarking BGP Routers" (IISWC 2007)

commands:
  table3     Table III: tps for 8 scenarios x 4 modeled systems, no cross-traffic
  fig3       Figure 3: per-process CPU load during Scenario 6 (PIII, Xeon, IXP2400)
  fig4       Figure 4: Pentium III CPU load, small vs large packets (Scenarios 1-2)
  fig5       Figure 5: tps vs cross-traffic for all scenarios and systems
  fig6       Figure 6: Pentium III Scenario 8 with and without cross-traffic
  scenario   run one scenario on one modeled system and print phase detail
  live       run the benchmark against the live Go BGP router over loopback
  fanout     many-peer emission: N receivers in G policy groups, update groups on vs off
  lookup     data-plane LPM throughput: 1M-prefix full table, optional churn
  ablate     ablation studies of the model's design choices
  worm       update-storm survivability (max sustainable / keepalive-safe rates)
  livesweep  live Figure-5 analogue: tps vs rate-controlled cross-traffic
  chaos      conformance replay under fault injection: digests across shards/profiles
  mrt        summarize an MRT TABLE_DUMP_V2 file (peers, lengths, origins)

run "bgpbench <command> -h" for flags.
`)
}

func csvOut(dir, name string, set *trace.Set) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("  wrote %s\n", f.Name())
	return set.WriteCSV(f)
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	n := fs.Int("n", 20000, "routing table size in prefixes")
	fs.Parse(args)
	fmt.Printf("Simulating 8 scenarios x 4 systems, table size %d...\n\n", *n)
	sim, err := bench.Table3(*n)
	if err != nil {
		return err
	}
	bench.WriteTable3(os.Stdout, sim)
	geo, worst := bench.Table3Fidelity(sim)
	fmt.Printf("\nfidelity vs paper: geometric-mean ratio %.3f, worst cell %.3f\n", geo, worst)
	return nil
}

func printPhases(phases []platform.PhaseResult) {
	for _, p := range phases {
		fmt.Printf("  %-16s start=%8.1fs dur=%8.1fs prefixes=%-7d tps=%9.1f",
			p.Name, p.Start, p.Duration, p.Prefixes, p.TPS)
		if p.OfferedMbps > 0 {
			fmt.Printf("  fwd=%.1f/%.1f Mbps", p.ForwardedMbps, p.OfferedMbps)
		}
		fmt.Println()
	}
}

func cmdFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	n := fs.Int("n", 20000, "routing table size in prefixes")
	dir := fs.String("csv", "", "directory for CSV trace output")
	fs.Parse(args)
	results, err := bench.Fig3(*n)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("\nFigure 3 (%s): per-process CPU load during Scenario 6\n", r.System)
		printPhases(r.Phases)
		r.Traces.RenderASCII(os.Stdout, 76)
		if err := csvOut(*dir, "fig3_"+r.System+".csv", r.Traces); err != nil {
			return err
		}
	}
	return nil
}

func cmdFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	n := fs.Int("n", 20000, "routing table size in prefixes")
	dir := fs.String("csv", "", "directory for CSV trace output")
	fs.Parse(args)
	results, err := bench.Fig4(*n)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("\nFigure 4 (%s): Pentium III CPU load\n", r.Scenario)
		printPhases(r.Phases)
		r.Traces.RenderASCII(os.Stdout, 76)
		name := fmt.Sprintf("fig4_scenario%d.csv", r.Scenario.Num)
		if err := csvOut(*dir, name, r.Traces); err != nil {
			return err
		}
	}
	return nil
}

func cmdFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	n := fs.Int("n", 5000, "routing table size in prefixes (smaller: 8x4xsweep runs)")
	step := fs.Float64("step", 100, "cross-traffic sweep step in Mbps")
	dir := fs.String("csv", "", "directory for CSV output")
	fs.Parse(args)
	fmt.Printf("Sweeping cross-traffic for 8 scenarios x 4 systems (step %.0f Mbps)...\n", *step)
	series, err := bench.Fig5(*n, *step)
	if err != nil {
		return err
	}
	cur := 0
	for _, s := range series {
		if s.Scenario.Num != cur {
			cur = s.Scenario.Num
			fmt.Printf("\nBenchmark %d (%s)\n", cur, s.Scenario)
			fmt.Printf("  %-12s", "cross Mbps")
			fmt.Println("tps...")
		}
		fmt.Printf("  %-12s", s.System)
		for _, p := range s.Points {
			fmt.Printf(" %9.1f@%-4.0f", p.TPS, p.CrossMbps)
		}
		fmt.Println()
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*dir, "fig5.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Printf("\n  wrote %s\n", f.Name())
		return bench.WriteFig5CSV(f, series)
	}
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	n := fs.Int("n", 20000, "routing table size in prefixes")
	cross := fs.Float64("cross", 300, "cross-traffic level in Mbps")
	dir := fs.String("csv", "", "directory for CSV trace output")
	fs.Parse(args)
	results, err := bench.Fig6(*n, *cross)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("\nFigure 6: Pentium III, Scenario 8, cross-traffic %.0f Mbps (tps %.1f)\n", r.CrossMbps, r.TPS)
		printPhases(r.Phases)
		r.Traces.RenderASCII(os.Stdout, 76)
		name := fmt.Sprintf("fig6_cross%.0f.csv", r.CrossMbps)
		if err := csvOut(*dir, name, r.Traces); err != nil {
			return err
		}
	}
	return nil
}

func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	num := fs.Int("num", 1, "scenario number 1-8")
	system := fs.String("system", "PentiumIII", "system: PentiumIII, Xeon, IXP2400, Cisco")
	n := fs.Int("n", 20000, "routing table size in prefixes")
	cross := fs.Float64("cross", 0, "cross-traffic in Mbps")
	fs.Parse(args)
	scn, err := bench.ScenarioByNum(*num)
	if err != nil {
		return err
	}
	sys, ok := platform.SystemByName(*system)
	if !ok {
		return fmt.Errorf("unknown system %q", *system)
	}
	res, err := bench.RunModeled(sys, scn, *n, platform.CrossTraffic{Mbps: *cross})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s, table %d, cross %.0f Mbps\n", scn, sys.Name, *n, *cross)
	printPhases(res.Full.Phases)
	fmt.Printf("measured phase tps: %.1f\n", res.TPS)
	res.Full.Traces.RenderASCII(os.Stdout, 76)
	return nil
}

func cmdLive(args []string) error {
	fs := flag.NewFlagSet("live", flag.ExitOnError)
	n := fs.Int("n", 10000, "routing table size in prefixes")
	num := fs.Int("num", 0, "scenario number 1-8 (0 = all)")
	afi := fs.String("afi", "", "address family of the generated table: v4 (default), v6, or dual")
	fibEngine := fs.String("fib", "patricia", "FIB engine: "+strings.Join(fib.EngineNames, ", "))
	cpus := fs.Int("cpus", 0, "set GOMAXPROCS for the run (0 = leave as is)")
	crossWorkers := fs.Int("crossworkers", 0, "goroutines saturating the forwarding plane")
	crossPPS := fs.Float64("crosspps", 0, "rate-controlled cross-traffic in packets/second")
	seed := fs.Int64("seed", 1, "workload seed")
	shards := fs.String("shards", "", "comma-separated decision-worker counts to sweep (0 = GOMAXPROCS); empty = GOMAXPROCS only")
	jsonOut := fs.String("json", "", "write machine-readable results (scenario x shards x tps) to this file")
	profile := fs.String("profile", "", "netem fault profile for the speaker transports (empty/clean = none)")
	faultSeed := fs.Int64("faultseed", 0, "fault-schedule seed (0 = workload seed)")
	batch := fs.Int("batch", 0, "max UPDATEs coalesced per shard dispatch (0 = default 256, negative = disable batching)")
	batchDelay := fs.Duration("batchdelay", 0, "max time an UPDATE may wait in a forming batch (0 = default 200us, negative = flush when the session idles)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the benchmark runs")
	repeat := fs.Int("repeat", 1, "runs per scenario/shard cell; the best run is reported (rejects scheduler noise on short runs)")
	merge := fs.String("merge", "", "append the rows to an existing JSON array file (e.g. BENCH_live.json)")
	fs.Parse(args)

	applyCPUs(*cpus)

	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers via the side-effect
		// import; serve it for the life of the process.
		go http.ListenAndServe(*pprofAddr, nil)
	}

	shardList, err := parseShardList(*shards)
	if err != nil {
		return err
	}
	var scns []bench.Scenario
	if *num == 0 {
		scns = bench.Scenarios
	} else {
		scn, err := bench.ScenarioByNum(*num)
		if err != nil {
			return err
		}
		scns = []bench.Scenario{scn}
	}
	fmt.Printf("Live benchmark: Go BGP router over loopback, table %d, fib=%s, crossworkers=%d\n\n",
		*n, *fibEngine, *crossWorkers)
	fmt.Printf("%-48s %7s %12s %10s %14s\n", "scenario", "shards", "tps", "duration", "fwd pkts/s")
	var rows []liveRow
	for _, scn := range scns {
		for _, sh := range shardList {
			cfg := bench.LiveConfig{
				TableSize:       *n,
				Seed:            *seed,
				AFI:             *afi,
				FIBEngine:       *fibEngine,
				CrossWorkers:    *crossWorkers,
				CrossPPS:        *crossPPS,
				Shards:          sh,
				Timeout:         5 * time.Minute,
				FaultProfile:    *profile,
				FaultSeed:       *faultSeed,
				BatchMaxUpdates: *batch,
				BatchMaxDelay:   *batchDelay,
			}
			// Short cells (tens of milliseconds on small tables) are at
			// the mercy of the scheduler; with -repeat the best of k runs
			// estimates the noise-free throughput.
			res, err := bench.RunLive(scn, cfg)
			if err != nil {
				return err
			}
			for rep := 1; rep < *repeat; rep++ {
				again, err := bench.RunLive(scn, cfg)
				if err != nil {
					return err
				}
				if again.TPS > res.TPS {
					res = again
				}
			}
			fmt.Printf("%-48s %7d %12.0f %9.3fs %14.0f",
				scn.String(), res.Shards, res.TPS, res.Duration.Seconds(), res.FwdPacketsPerSec)
			if *profile != "" && *profile != "clean" {
				st := res.Faults
				fmt.Printf("  [%s: %d faults, %d retries]", res.FaultProfile,
					st.Corrupts+st.Reorders+st.Stalls+st.ReadStalls+st.Resets, res.Retries)
			}
			fmt.Println()
			rows = append(rows, liveRow{
				Workload:        "scenario",
				Scenario:        res.Scenario.Num,
				ScenarioName:    res.Scenario.String(),
				AFI:             res.AFI,
				Prefixes:        res.Prefixes,
				Shards:          res.Shards,
				TPS:             res.TPS,
				DurationSeconds: res.Duration.Seconds(),
				FwdPPS:          res.FwdPacketsPerSec,
				FIBEngine:       *fibEngine,
				BatchMaxUpdates: res.BatchMaxUpdates,
				BatchMaxDelayUS: float64(res.BatchMaxDelay) / float64(time.Microsecond),
				Repeats:         *repeat,
				Mem:             bench.Mem(),
				Host:            bench.Host(),
			})
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", *jsonOut, len(rows))
	}
	if *merge != "" {
		if err := mergeRows(*merge, "scenario", *afi, rows); err != nil {
			return err
		}
		fmt.Printf("\nmerged %d rows into %s\n", len(rows), *merge)
	}
	return nil
}

// fanoutRow is one record of the machine-readable fanout benchmark
// output, sharing BENCH_live.json with the other workloads (the
// workload field tells them apart).
type fanoutRow struct {
	Workload        string         `json:"workload"` // "fanout"
	AFI             string         `json:"afi,omitempty"`
	Peers           int            `json:"peers"`
	Groups          int            `json:"groups"`
	UpdateGroups    bool           `json:"update_groups"`
	Prefixes        int            `json:"prefixes"`
	Shards          int            `json:"shards"`
	TPS             float64        `json:"tps"`
	NsPerPrefixPeer float64        `json:"ns_per_prefix_peer"`
	DurationSeconds float64        `json:"duration_seconds"`
	TableMode       string         `json:"table_mode,omitempty"`
	GroupCount      int            `json:"update_group_count,omitempty"`
	FanoutRatio     float64        `json:"update_group_fanout_ratio,omitempty"`
	BytesBuilt      uint64         `json:"update_group_bytes_built,omitempty"`
	BytesSaved      uint64         `json:"update_group_bytes_saved,omitempty"`
	BytesMarshaled  uint64         `json:"update_group_bytes_marshaled,omitempty"`
	CacheHits       uint64         `json:"update_group_marshal_cache_hits,omitempty"`
	CacheMisses     uint64         `json:"update_group_marshal_cache_misses,omitempty"`
	Mem             bench.MemInfo  `json:"mem"`
	Host            bench.HostInfo `json:"host"`
}

func cmdFanout(args []string) error {
	fs := flag.NewFlagSet("fanout", flag.ExitOnError)
	n := fs.Int("n", 5000, "routing table size in prefixes")
	afi := fs.String("afi", "", "address family of the generated table: v4 (default), v6, or dual")
	tableMode := fs.String("table", "", "table composition: uniform (default, one shared AS path) or dfz (Zipf attribute sharing)")
	groupedOnly := fs.Bool("grouped-only", false, "run only the update-groups-on cells (full-DFZ ungrouped runs need per-peer RIB memory)")
	peers := fs.String("peers", "25,50,100", "comma-separated receiver peer counts to sweep")
	groups := fs.Int("groups", 4, "export-policy groups the receivers split across")
	shards := fs.Int("shards", 0, "decision-worker shard count (0 = GOMAXPROCS)")
	cpus := fs.Int("cpus", 0, "set GOMAXPROCS for the run (0 = leave as is)")
	seed := fs.Int64("seed", 1, "workload seed")
	jsonOut := fs.String("json", "", "write machine-readable results to this file")
	merge := fs.String("merge", "", "append the rows to an existing JSON array file (e.g. BENCH_live.json)")
	fs.Parse(args)
	applyCPUs(*cpus)

	var peerList []int
	for _, part := range strings.Split(*peers, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -peers value %q", part)
		}
		peerList = append(peerList, v)
	}

	fmt.Printf("Fanout benchmark: table %d, %d policy groups, peers %v, update groups off vs on\n\n",
		*n, *groups, peerList)
	fmt.Printf("%6s %7s %7s %12s %16s %10s %8s %12s %12s %12s\n",
		"peers", "grouped", "shards", "tps", "ns/prefix/peer", "duration", "fanout", "bytes saved", "marshaled", "rss")
	modes := []bool{false, true}
	if *groupedOnly {
		modes = []bool{true}
	}
	var rows []fanoutRow
	for _, p := range peerList {
		for _, ug := range modes {
			res, err := bench.RunFanout(bench.FanoutConfig{
				Peers: p, Groups: *groups, TableSize: *n, AFI: *afi, TableMode: *tableMode,
				Seed: *seed, Shards: *shards, UpdateGroups: ug,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%6d %7v %7d %12.0f %16.1f %9.3fs %8.1f %12s %12s %12s\n",
				res.Peers, res.UpdateGroups, res.Shards, res.TPS, res.NsPerPrefixPeer,
				res.Duration.Seconds(), res.FanoutRatio,
				fmtBytes(res.BytesSaved), fmtBytes(res.BytesMarshaled), fmtBytes(res.Mem.RSSBytes))
			rows = append(rows, fanoutRow{
				Workload:        "fanout",
				AFI:             res.AFI,
				Peers:           res.Peers,
				Groups:          res.Groups,
				UpdateGroups:    res.UpdateGroups,
				Prefixes:        res.Prefixes,
				Shards:          res.Shards,
				TPS:             res.TPS,
				NsPerPrefixPeer: res.NsPerPrefixPeer,
				DurationSeconds: res.Duration.Seconds(),
				TableMode:       res.TableMode,
				GroupCount:      res.GroupCount,
				FanoutRatio:     res.FanoutRatio,
				BytesBuilt:      res.BytesBuilt,
				BytesSaved:      res.BytesSaved,
				BytesMarshaled:  res.BytesMarshaled,
				CacheHits:       res.CacheHits,
				CacheMisses:     res.CacheMisses,
				Mem:             res.Mem,
				Host:            bench.Host(),
			})
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", *jsonOut, len(rows))
	}
	if *merge != "" {
		if err := mergeRows(*merge, "fanout", *afi, rows); err != nil {
			return err
		}
		fmt.Printf("\nmerged %d rows into %s\n", len(rows), *merge)
	}
	return nil
}

// mergeRows appends rows to an existing JSON array file, preserving the
// records already there. Rows of the same workload AND address family
// are replaced so reruns do not accumulate duplicates, while a -afi v6
// or dual run merges alongside the persisted v4 rows instead of
// clobbering them.
func mergeRows[T any](path, workload, afi string, rows []T) error {
	var existing []json.RawMessage
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &existing); err != nil {
			return fmt.Errorf("merge %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var kept []json.RawMessage
	for _, raw := range existing {
		var probe struct {
			Workload string `json:"workload"`
			AFI      string `json:"afi"`
		}
		if err := json.Unmarshal(raw, &probe); err == nil &&
			probe.Workload == workload && probe.AFI == afi {
			continue
		}
		kept = append(kept, raw)
	}
	for _, row := range rows {
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		kept = append(kept, b)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(kept)
}

// liveRow is one record of the machine-readable live benchmark output.
// Host context, memory, and the effective batching knobs ride along so
// persisted results stay comparable across machines and configurations.
type liveRow struct {
	Workload        string         `json:"workload,omitempty"`
	Scenario        int            `json:"scenario"`
	ScenarioName    string         `json:"scenario_name"`
	AFI             string         `json:"afi,omitempty"`
	Prefixes        int            `json:"prefixes"`
	Shards          int            `json:"shards"`
	TPS             float64        `json:"tps"`
	DurationSeconds float64        `json:"duration_seconds"`
	FwdPPS          float64        `json:"fwd_pps,omitempty"`
	FIBEngine       string         `json:"fib_engine"`
	BatchMaxUpdates int            `json:"batch_max_updates"`
	BatchMaxDelayUS float64        `json:"batch_max_delay_us"`
	Repeats         int            `json:"repeats,omitempty"`
	Mem             bench.MemInfo  `json:"mem"`
	Host            bench.HostInfo `json:"host"`
}

// applyCPUs implements the -cpus knob: benchmarks exercising shard or
// snapshot-reader scaling are meaningless on one scheduler thread, so the
// knob raises GOMAXPROCS explicitly and the warning is loud when the run
// would still be single-threaded.
func applyCPUs(cpus int) {
	if cpus > 0 {
		runtime.GOMAXPROCS(cpus)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprint(os.Stderr,
			"WARNING: GOMAXPROCS=1 - shard scaling and the lock-free snapshot read path\n"+
				"         are invisible on a single scheduler thread; rerun with -cpus N (N>1)\n"+
				"         or on a multi-core host for meaningful concurrency numbers.\n")
	}
}

// parseShardList parses the -shards sweep value: a comma-separated list of
// worker counts, where 0 means GOMAXPROCS. Empty runs GOMAXPROCS only.
func parseShardList(s string) ([]int, error) {
	if s == "" {
		return []int{0}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -shards value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// lookupRow is one record of the machine-readable lookup benchmark
// output, sharing BENCH_live.json with the scenario rows (the workload
// field tells them apart).
type lookupRow struct {
	Workload           string         `json:"workload"` // "lookup" or "lookup_churn"
	Prefixes           int            `json:"prefixes"`
	FIBEngine          string         `json:"fib_engine"`
	Table              string         `json:"table"`
	Readers            int            `json:"readers"`
	LookupsPerSec      float64        `json:"lookups_per_sec"`
	NsPerLookup        float64        `json:"ns_per_lookup"`
	ChurnBatchesPerSec float64        `json:"churn_batches_per_sec,omitempty"`
	ChurnOpsPerSec     float64        `json:"churn_ops_per_sec,omitempty"`
	DurationSeconds    float64        `json:"duration_seconds"`
	Mem                bench.MemInfo  `json:"mem"`
	Host               bench.HostInfo `json:"host"`
}

func lookupRowFor(res bench.LookupResult, churn bool) lookupRow {
	row := lookupRow{
		Workload:        "lookup",
		Prefixes:        res.Prefixes,
		FIBEngine:       res.Engine,
		Table:           res.Table,
		Readers:         res.Readers,
		LookupsPerSec:   res.LookupsPerSec(),
		NsPerLookup:     res.NsPerLookup(),
		DurationSeconds: res.Duration.Seconds(),
		Mem:             res.Mem,
		Host:            bench.Host(),
	}
	if churn {
		row.Workload = "lookup_churn"
		row.ChurnBatchesPerSec = float64(res.ChurnBatches) / res.Duration.Seconds()
		row.ChurnOpsPerSec = float64(res.ChurnOps) / res.Duration.Seconds()
	}
	return row
}

func cmdLookup(args []string) error {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	n := fs.Int("n", 1_000_000, "installed prefixes (synthetic full table)")
	engines := fs.String("engines", strings.Join(fib.EngineNames, ","), "comma-separated engines for the single-threaded pass")
	readers := fs.Int("readers", 0, "reader goroutines for the churn pass (0 = GOMAXPROCS)")
	churn := fs.Int("churn", 512, "writer batch size for the churn pass (0 = skip the churn pass)")
	duration := fs.Duration("duration", 2*time.Second, "measurement window per cell")
	seed := fs.Int64("seed", 5, "workload seed")
	cpus := fs.Int("cpus", 0, "set GOMAXPROCS for the run (0 = leave as is)")
	jsonOut := fs.String("json", "", "write machine-readable results to this file")
	fs.Parse(args)

	applyCPUs(*cpus)
	if *readers == 0 {
		*readers = runtime.GOMAXPROCS(0)
	}

	var rows []lookupRow
	fmt.Printf("Lookup benchmark: %d-prefix synthetic full table, %v per cell\n\n", *n, *duration)
	fmt.Printf("single-threaded LPM, bare engine:\n")
	fmt.Printf("  %-10s %14s %12s %14s %12s\n", "engine", "lookups/s", "ns/lookup", "heap", "rss")
	for _, name := range strings.Split(*engines, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		res, err := bench.RunLookup(bench.LookupConfig{
			TableSize: *n, Seed: *seed, Engine: name, Duration: *duration,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s %14.0f %12.1f %14s %12s\n", name,
			res.LookupsPerSec(), res.NsPerLookup(), fmtBytes(res.Mem.AllocBytes), fmtBytes(res.Mem.RSSBytes))
		rows = append(rows, lookupRowFor(res, false))
	}

	if *churn > 0 {
		// The churn matrix is the point of the snapshot read path: reader
		// throughput under a writer committing delete+reinsert batches flat
		// out. The RWMutex wrappers stall readers on every commit; the
		// snapshot table must not.
		cells := []struct{ engine, table string }{
			{"patricia", "rwmutex"},
			{"poptrie", "rwmutex"},
			{"poptrie", "snapshot"},
		}
		fmt.Printf("\n%d readers vs churn writer (batches of %d delete+reinsert ops):\n", *readers, *churn)
		fmt.Printf("  %-20s %14s %12s %16s\n", "table", "lookups/s", "ns/lookup", "churn ops/s")
		for _, c := range cells {
			res, err := bench.RunLookup(bench.LookupConfig{
				TableSize: *n, Seed: *seed, Engine: c.engine, Table: c.table,
				Readers: *readers, Duration: *duration, ChurnBatch: *churn,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %-20s %14.0f %12.1f %16.0f\n", c.table+"-"+c.engine,
				res.LookupsPerSec(), res.NsPerLookup(), float64(res.ChurnOps)/res.Duration.Seconds())
			rows = append(rows, lookupRowFor(res, true))
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", *jsonOut, len(rows))
	}
	return nil
}

// fmtBytes renders a byte count with a binary unit for the console table.
func fmtBytes(b uint64) string {
	switch {
	case b == 0:
		return "-"
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	n := fs.Int("n", 20000, "routing table size in prefixes")
	fs.Parse(args)
	return bench.Ablate(os.Stdout, *n)
}

func cmdWorm(args []string) error {
	fs := flag.NewFlagSet("worm", flag.ExitOnError)
	fs.Parse(args)
	fmt.Println("Searching survivable update rates (binary search per system)...")
	rows, err := bench.WormStorm()
	if err != nil {
		return err
	}
	fmt.Println()
	bench.WriteWormReport(os.Stdout, rows)
	return nil
}

func cmdLiveSweep(args []string) error {
	fs := flag.NewFlagSet("livesweep", flag.ExitOnError)
	n := fs.Int("n", 10000, "routing table size in prefixes")
	num := fs.Int("num", 2, "scenario number 1-8")
	cpus := fs.Int("cpus", 0, "set GOMAXPROCS for the run (0 = leave as is)")
	fs.Parse(args)
	applyCPUs(*cpus)
	scn, err := bench.ScenarioByNum(*num)
	if err != nil {
		return err
	}
	fmt.Printf("Live cross-traffic sweep: %s on the Go router, table %d\n\n", scn, *n)
	fmt.Printf("%12s %12s %14s\n", "cross pps", "tps", "fwd pkts/s")
	for _, pps := range []float64{0, 50000, 100000, 250000, 500000, 1000000} {
		res, err := bench.RunLive(scn, bench.LiveConfig{
			TableSize: *n, Seed: 1, CrossPPS: pps, Timeout: 5 * time.Minute,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%12.0f %12.0f %14.0f\n", pps, res.TPS, res.FwdPacketsPerSec)
	}
	return nil
}

func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	n := fs.Int("n", 0, "routing table size in prefixes (0 = conformance default)")
	num := fs.Int("num", 0, "scenario number 1-8 (0 = all)")
	profiles := fs.String("profiles", "clean,lossy-reorder,flap-reset", "comma-separated netem fault profiles")
	seed := fs.Int64("seed", 1701, "workload and fault-schedule seed")
	shards := fs.String("shards", "1,4", "comma-separated decision-worker counts to compare")
	jsonOut := fs.String("json", "", "write machine-readable conformance results to this file")
	fs.Parse(args)

	shardList, err := parseShardList(*shards)
	if err != nil {
		return err
	}
	var profileList []string
	for _, p := range strings.Split(*profiles, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if _, ok := netem.ProfileByName(p); !ok {
			return fmt.Errorf("unknown fault profile %q (known: %s)", p, strings.Join(netem.ProfileNames(), ", "))
		}
		profileList = append(profileList, p)
	}
	var scns []bench.Scenario
	if *num == 0 {
		scns = bench.Scenarios
	} else {
		scn, err := bench.ScenarioByNum(*num)
		if err != nil {
			return err
		}
		scns = []bench.Scenario{scn}
	}

	fmt.Printf("Chaos conformance: seed %d, profiles [%s], shards %v\n\n",
		*seed, strings.Join(profileList, " "), shardList)
	fmt.Printf("%-48s %-14s %7s %10s %8s %8s %8s  %s\n",
		"scenario", "profile", "shards", "duration", "tx", "retries", "faults", "state digest")
	var all []bench.ConformanceResult
	mismatches := 0
	for _, scn := range scns {
		// Digests must agree across every (profile, shards) cell of one
		// scenario: the fault profiles guarantee eventual delivery, so the
		// settled state is invariant.
		want := ""
		for _, profile := range profileList {
			for _, sh := range shardList {
				res, err := bench.RunConformance(scn, bench.ConformanceConfig{
					Profile:   profile,
					Seed:      *seed,
					Shards:    sh,
					TableSize: *n,
				})
				if err != nil {
					return err
				}
				all = append(all, res)
				st := res.Faults
				faults := st.Corrupts + st.Reorders + st.Stalls + st.ReadStalls + st.Resets
				digest := res.StateDigest()
				mark := ""
				if want == "" {
					want = digest
				} else if digest != want {
					mark = "  << MISMATCH"
					mismatches++
				}
				fmt.Printf("%-48s %-14s %7d %9.2fs %8d %8d %8d  %.16s%s\n",
					scn.String(), profile, res.Shards, res.Duration.Seconds(),
					res.Transactions, res.Retries, faults, digest, mark)
			}
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d runs)\n", *jsonOut, len(all))
	}
	if mismatches > 0 {
		return fmt.Errorf("chaos: %d digest mismatch(es) — router state diverged across shards or profiles", mismatches)
	}
	fmt.Println("\nall digests agree: conformance holds across shard counts and fault profiles")
	return nil
}

func cmdMRT(args []string) error {
	fs := flag.NewFlagSet("mrt", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bgpbench mrt <file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tbl, err := mrt.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("MRT TABLE_DUMP_V2: collector %s, view %q\n", tbl.CollectorID, tbl.ViewName)
	fmt.Printf("peers: %d\n", len(tbl.Peers))
	for i, p := range tbl.Peers {
		fmt.Printf("  [%d] AS %-6d id %-15s addr %s\n", i, p.AS, p.ID, p.Addr)
	}
	lenHist := map[int]int{}
	pathLenSum, entries := 0, 0
	origins := map[uint32]int{}
	for _, p := range tbl.Prefixes {
		lenHist[p.Prefix.Len()]++
		for _, e := range p.Entries {
			entries++
			pathLenSum += e.Attrs.ASPath.Length()
			if o, ok := e.Attrs.ASPath.Origin(); ok {
				origins[o]++
			}
		}
	}
	fmt.Printf("prefixes: %d (%d RIB entries)\n", len(tbl.Prefixes), entries)
	fmt.Println("prefix length histogram:")
	for l := 0; l <= 32; l++ {
		if lenHist[l] > 0 {
			fmt.Printf("  /%-3d %7d  %s\n", l, lenHist[l], strings.Repeat("#", 1+lenHist[l]*50/len(tbl.Prefixes)))
		}
	}
	if entries > 0 {
		fmt.Printf("mean AS-path length: %.2f\n", float64(pathLenSum)/float64(entries))
	}
	type oc struct {
		as uint32
		n  int
	}
	var top []oc
	for a, n := range origins {
		top = append(top, oc{a, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("top origin ASNs:")
	for _, o := range top {
		fmt.Printf("  AS %-6d %d prefixes\n", o.as, o.n)
	}
	return nil
}
