# Development targets for bgpbench. `make check` is the pre-merge gate:
# build, formatting, vet, the project's own static analyzers (bgplint),
# race-test the concurrent control-plane packages, run the
# fault-injection conformance gate under the race detector, then the
# full test suite.

GO ?= go
GOFMT ?= gofmt

.PHONY: all build fmt vet lint lint-allows test race conformance check bench bench-smoke

all: check

build:
	$(GO) build ./...

# Fail (with the offending file list) if any file is not gofmt-clean.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# go vet twice: the full default suite over everything, then an explicit
# pass pinning the two checks the concurrency and counter code leans on
# hardest (copied locks, discarded sync/atomic results) so they stay on
# even if the default set ever changes.
vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -unusedresult ./...

# Project-invariant static analysis (internal/analysis, cmd/bgplint):
# deterministic clocks, pooled-buffer ownership, attribute-interning
# immutability, router-mutex lock discipline, dropped protocol errors,
# plus the flow-sensitive refcount/ownership/read-purity analyzers.
# Runs against the audited-findings ledger (lint/baseline.json): new or
# stale findings fail, audited ones stay visible. The -cache directory
# makes unchanged re-runs instant; -budget keeps a cold run honest.
lint:
	$(GO) run ./cmd/bgplint -cache .cache/bgplint -baseline lint/baseline.json -budget 30s ./...

# Regenerate the suppression inventory embedded in the docs from the
# //bgplint:allow directives in the source.
lint-allows:
	$(GO) run ./cmd/bgplint -allows docs/lint-allows.md -baseline lint/baseline.json ./...

# The sharded router, the session layer, and the FIB's lock-free
# snapshot read path are the concurrency-heavy code; run them under the
# race detector every time (the fib package carries the
# lookup-under-churn tests, IPv4 and IPv6).
race:
	$(GO) test -race ./internal/core/... ./internal/session/... ./internal/fib/...

# Conformance gate: one representative scenario under the flap-reset
# fault profile, N=1 vs N=4 decision shards, plus the replay-determinism
# check, the many-peer update-group equivalence gate (12 receivers in
# 4 policy groups, grouped vs ungrouped digests), and the dual-stack
# gate (v4/v6/dual digest matrix with IPv6 NLRI end-to-end) — all under
# the race detector (the netem layer, the reconnecting speakers, and
# the sharded router interleave heavily here).
conformance:
	BGPBENCH_CONFORMANCE_GATE=1 $(GO) test -race \
		-run 'TestConformanceGate|TestConformanceManyPeerGate|TestConformanceReplayDeterminism|TestConformanceDualStackGate' ./internal/bench/

# Hot-path microbenchmark smoke: run the dispatch/process benchmarks for
# one iteration so they compile and execute on every gate (real numbers
# need -benchtime well above 1x). The 100k-prefix group-rebuild variant
# is the large-table smoke: one full chunked catch-up over a 100k
# Loc-RIB through the marshal cache and slab arena.
bench-smoke:
	$(GO) test -run='^$$' -bench 'BenchmarkDispatchUpdate|BenchmarkProcessUpdate|BenchmarkEmitGrouped' \
		-benchtime=1x ./internal/core/
	$(GO) test -run='^$$' -bench 'BenchmarkGroupRebuild/prefixes=100000' \
		-benchtime=1x ./internal/core/
	BGPBENCH_LOOKUP_N=50000 $(GO) test -run='^$$' \
		-bench 'BenchmarkLookup$$|BenchmarkLookupV6$$|BenchmarkLookupChurn' \
		-benchtime=1x ./internal/fib/
	# Static-analysis latency smoke: a cold (uncached) full-repo bgplint
	# run must land inside the 30s budget the incremental lint gate
	# assumes, so the cache can never hide an analysis-time regression.
	$(GO) run ./cmd/bgplint -baseline lint/baseline.json -budget 30s ./... > /dev/null

test:
	$(GO) test ./...

check: build fmt vet lint race conformance bench-smoke test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
