# Development targets for bgpbench. `make check` is the pre-merge gate:
# build, vet, race-test the concurrent control-plane packages, then the
# full test suite.

GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The sharded router and the session layer are the concurrency-heavy
# packages; run them under the race detector every time.
race:
	$(GO) test -race ./internal/core/... ./internal/session/...

test:
	$(GO) test ./...

check: build vet race test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
