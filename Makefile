# Development targets for bgpbench. `make check` is the pre-merge gate:
# build, vet, race-test the concurrent control-plane packages, run the
# fault-injection conformance gate under the race detector, then the
# full test suite.

GO ?= go

.PHONY: all build vet test race conformance check bench bench-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The sharded router and the session layer are the concurrency-heavy
# packages; run them under the race detector every time.
race:
	$(GO) test -race ./internal/core/... ./internal/session/...

# Conformance gate: one representative scenario under the flap-reset
# fault profile, N=1 vs N=4 decision shards, plus the replay-determinism
# check — all under the race detector (the netem layer, the reconnecting
# speakers, and the sharded router interleave heavily here).
conformance:
	BGPBENCH_CONFORMANCE_GATE=1 $(GO) test -race \
		-run 'TestConformanceGate|TestConformanceReplayDeterminism' ./internal/bench/

# Hot-path microbenchmark smoke: run the dispatch/process benchmarks for
# one iteration so they compile and execute on every gate (real numbers
# need -benchtime well above 1x).
bench-smoke:
	$(GO) test -run='^$$' -bench 'BenchmarkDispatchUpdate|BenchmarkProcessUpdate' \
		-benchtime=1x ./internal/core/

test:
	$(GO) test ./...

check: build vet race conformance bench-smoke test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
