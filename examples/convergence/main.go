// Convergence: measure how fast the live Go router absorbs a full
// routing table (the paper's start-up Scenarios 1-2) for every packet
// size and FIB engine combination. This is the workload a router faces
// after a reboot or session reset — the paper's motivating case where
// slow processing delays the return to service.
//
//	go run ./examples/convergence [-n 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bgpbench/internal/bench"
)

func main() {
	n := flag.Int("n", 20000, "routing table size in prefixes")
	flag.Parse()

	fmt.Printf("Start-up convergence of the live Go router (table: %d prefixes)\n\n", *n)
	fmt.Printf("%-10s %-14s %12s %12s\n", "fib", "packets", "tps", "time")

	for _, engine := range []string{"patricia", "binary", "hashlen", "linear", "poptrie"} {
		for _, scnNum := range []int{1, 2} {
			scn, err := bench.ScenarioByNum(scnNum)
			if err != nil {
				log.Fatal(err)
			}
			size := "small (1)"
			if scn.PrefixesPerMsg > 1 {
				size = "large (500)"
			}
			// The linear engine is O(table) per update; keep its run small
			// enough to finish promptly.
			tableSize := *n
			if engine == "linear" && tableSize > 4000 {
				tableSize = 4000
			}
			res, err := bench.RunLive(scn, bench.LiveConfig{
				TableSize: tableSize,
				Seed:      42,
				FIBEngine: engine,
				Timeout:   5 * time.Minute,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-14s %12.0f %11.3fs", engine, size, res.TPS, res.Duration.Seconds())
			if tableSize != *n {
				fmt.Printf("   (table reduced to %d: linear engine is the O(n) baseline)", tableSize)
			}
			fmt.Println()
		}
	}

	fmt.Println("\nObservations to look for (mirroring the paper's Table III):")
	fmt.Println("  - large packets beat small packets: per-message overhead amortizes;")
	fmt.Println("  - the FIB engine hardly matters here: BGP processing, not the lookup")
	fmt.Println("    structure, bounds control-plane convergence (trie inserts are cheap);")
	fmt.Println("  - the linear baseline collapses: FIB updates become O(table size).")
}
