// Lookupalgos: compare the five longest-prefix-match engines behind the
// router's FIB on a realistic routing table: build time, lookup
// throughput, and update (insert/delete) throughput. This exercises the
// address-lookup substrate the paper's forwarding path depends on
// (Ruiz-Sanchez et al.'s taxonomy).
//
//	go run ./examples/lookupalgos [-n 100000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
)

func main() {
	n := flag.Int("n", 100000, "routing table size in prefixes")
	lookups := flag.Int("lookups", 2_000_000, "number of lookups to time")
	flag.Parse()

	table := core.GenerateTable(core.TableGenConfig{N: *n, Seed: 7})
	fmt.Printf("LPM engine comparison: %d-prefix table, %d lookups\n\n", *n, *lookups)
	fmt.Printf("%-10s %12s %14s %14s %10s\n", "engine", "build", "lookups/s", "updates/s", "hit rate")

	// Pre-generate lookup targets: half inside announced space, half random.
	rng := rand.New(rand.NewSource(99))
	targets := make([]netaddr.Addr, *lookups)
	for i := range targets {
		if i%2 == 0 {
			r := table[rng.Intn(len(table))]
			targets[i] = r.Prefix.Host(uint64(rng.Uint32()))
		} else {
			targets[i] = netaddr.AddrFromV4(rng.Uint32())
		}
	}

	for _, name := range fib.EngineNames {
		eng, err := fib.NewEngine(name)
		if err != nil {
			log.Fatal(err)
		}
		// The linear reference is O(n) per lookup; shrink its workload so
		// the example stays interactive, and report normalized rates.
		tbl, tgts := table, targets
		if name == "linear" {
			if len(tbl) > 5000 {
				tbl = tbl[:5000]
			}
			if len(tgts) > 20000 {
				tgts = tgts[:20000]
			}
		}

		start := time.Now()
		for _, r := range tbl {
			eng.Insert(r.Prefix, fib.Entry{NextHop: netaddr.Addr(r.Prefix.Addr()), Port: 1})
		}
		build := time.Since(start)

		hits := 0
		start = time.Now()
		for _, a := range tgts {
			if _, ok := eng.Lookup(a); ok {
				hits++
			}
		}
		lookupDur := time.Since(start)

		// Update churn: delete and re-insert a rotating 10% slice.
		churn := len(tbl) / 10
		start = time.Now()
		for i := 0; i < churn; i++ {
			r := tbl[i]
			eng.Delete(r.Prefix)
			eng.Insert(r.Prefix, fib.Entry{Port: 2})
		}
		updateDur := time.Since(start)

		note := ""
		if name == "linear" {
			note = fmt.Sprintf("   (reduced: %d prefixes, %d lookups)", len(tbl), len(tgts))
		}
		fmt.Printf("%-10s %12v %14.0f %14.0f %9.1f%%%s\n",
			name,
			build.Round(time.Millisecond),
			float64(len(tgts))/lookupDur.Seconds(),
			float64(2*churn)/updateDur.Seconds(),
			100*float64(hits)/float64(len(tgts)),
			note,
		)
	}

	fmt.Println("\nThe router defaults to the Patricia trie: near-hash lookup speed with")
	fmt.Println("ordered walks and cheap updates; hashlen wins raw lookups but pays on")
	fmt.Println("tables whose prefix lengths spread; binary tries cost a pointer chase")
	fmt.Println("per bit; the linear scan is the property-test oracle only. The poptrie")
	fmt.Println("is the read-optimized extreme: popcount-compressed multibit nodes give")
	fmt.Println("the fastest lookups and copy-on-write snapshots (the lock-free read")
	fmt.Println("path), paying for it with the slowest single-route updates.")
}
