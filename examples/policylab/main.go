// Policylab: drive the policy engine and CIDR aggregation against a live
// router. An upstream speaker announces a mixed table; the router's
// import policy filters bogons, tags provider routes with communities,
// and localizes preference; the example then aggregates the surviving
// routes and reports the FIB compression that aggregation would buy.
//
//	go run ./examples/policylab
package main

import (
	"fmt"
	"log"
	"time"

	"bgpbench/internal/aggregate"
	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/speaker"
	"bgpbench/internal/wire"
)

func main() {
	// Import policy: drop RFC 1918 space, prefer short paths, tag the rest.
	bogons := &policy.PrefixList{Name: "bogons", Rules: []policy.PrefixRule{
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), GE: 8, LE: 32, Action: policy.Permit},
		{Prefix: netaddr.MustParsePrefix("172.16.0.0/12"), GE: 12, LE: 32, Action: policy.Permit},
		{Prefix: netaddr.MustParsePrefix("192.168.0.0/16"), GE: 16, LE: 32, Action: policy.Permit},
	}}
	prefer := uint32(200)
	tag := wire.CommunityFrom(65000, 65001)
	importMap := &policy.RouteMap{
		Name: "from-upstream",
		Terms: []policy.Term{
			{
				Name:   "drop-bogons",
				Match:  policy.Match{PrefixList: bogons},
				Action: policy.Deny,
			},
			{
				Name:   "prefer-short",
				Match:  policy.Match{ASPath: &policy.ASPathCond{MaxLen: 2}},
				Set:    policy.Set{LocalPref: &prefer, AddCommunity: []wire.Community{tag}},
				Action: policy.Permit,
			},
			{
				Name:   "tag-rest",
				Set:    policy.Set{AddCommunity: []wire.Community{tag}},
				Action: policy.Permit,
			},
		},
	}

	router, err := core.NewRouter(core.Config{
		AS:         65000,
		ID:         netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr: "127.0.0.1:0",
		Neighbors:  []core.NeighborConfig{{AS: 65001, Import: importMap}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Start(); err != nil {
		log.Fatal(err)
	}
	defer router.Stop()

	up := speaker.New(speaker.Config{
		AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: router.ListenAddr(),
	})
	if err := up.Connect(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	defer up.Stop()

	// A mixed announcement: legitimate space, bogons, and sibling blocks
	// that aggregation can merge.
	var routes []core.Route
	for i := 0; i < 64; i++ {
		routes = append(routes, core.Route{
			Prefix: netaddr.PrefixFrom(netaddr.AddrFrom4(198, 18, byte(i), 0), 24),
			Path:   wire.NewASPath(65001, 7),
		})
	}
	routes = append(routes,
		core.Route{Prefix: netaddr.MustParsePrefix("10.66.0.0/16"), Path: wire.NewASPath(65001, 8)},      // bogon
		core.Route{Prefix: netaddr.MustParsePrefix("192.168.44.0/24"), Path: wire.NewASPath(65001, 8)},   // bogon
		core.Route{Prefix: netaddr.MustParsePrefix("203.0.113.0/24"), Path: wire.NewASPath(65001, 8, 9)}, // long path
	)
	if err := up.Announce(routes, 1); err != nil {
		log.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for router.Transactions() < uint64(len(routes)) {
		if time.Now().After(deadline) {
			log.Fatalf("router processed %d/%d", router.Transactions(), len(routes))
		}
		time.Sleep(time.Millisecond)
	}

	fmt.Printf("announced %d routes; router accepted %d into the FIB (bogons filtered)\n",
		len(routes), router.FIB().Len())

	// Collect the accepted routes for aggregation analysis.
	var accepted []aggregate.Route
	router.FIB().Walk(func(p netaddr.Prefix, e fib.Entry) bool {
		accepted = append(accepted, aggregate.Route{
			Prefix: p,
			Attrs:  wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 7), e.NextHop),
		})
		return true
	})
	agg := aggregate.Aggregate(accepted, aggregate.NewConfig(65000, netaddr.MustParseAddr("10.255.0.1")))
	fmt.Printf("CIDR aggregation: %d routes -> %d aggregates (%.0f%% FIB compression)\n",
		len(accepted), len(agg), 100*(1-float64(len(agg))/float64(len(accepted))))
	for _, r := range agg {
		if r.Prefix.Len() <= 20 {
			fmt.Printf("  %-18s %s\n", r.Prefix, r.Attrs.ASPath)
		}
	}
}
