// Wormstorm: the paper's motivation quantified. Typical BGP routers see
// on the order of 100 update messages per second; network-wide events
// like worm outbreaks raise that by 2-3 orders of magnitude, and a router
// that falls behind stops honoring session liveness — its peers tear the
// sessions down, amplifying the event. This example subjects each modeled
// system to open-loop update storms of increasing intensity and reports
// backlog, processing lag, and session survival.
//
//	go run ./examples/wormstorm
package main

import (
	"fmt"
	"log"

	"bgpbench/internal/bench"
	"bgpbench/internal/platform"
)

func main() {
	rates := []float64{50, 100, 500, 1000, 5000, 10000}

	fmt.Println("Open-loop update storms: 30 s of 1-prefix FIB-changing updates")
	fmt.Println("(lag = worst arrival-to-completion delay; session dies when lag > 90 s hold time)")
	for _, sys := range platform.Systems() {
		fmt.Printf("\n%s:\n", sys.Name)
		fmt.Printf("  %10s %12s %12s %12s %10s\n", "msgs/s", "processed/s", "max lag", "backlog", "session")
		for _, rate := range rates {
			sim := platform.NewSim(sys)
			res, err := sim.RunOpenLoop(platform.OpenLoopSpec{
				Kind:           platform.KindReplace,
				PrefixesPerMsg: 1,
				MsgsPerSec:     rate,
				Duration:       30,
				HoldTime:       90,
				DrainGrace:     120,
			}, platform.CrossTraffic{})
			if err != nil {
				log.Fatal(err)
			}
			state := "up"
			if res.KeepaliveMissed {
				state = "DOWN"
			} else if !res.Sustained {
				state = "lagging"
			}
			fmt.Printf("  %10.0f %12.0f %11.1fs %12d %10s\n",
				rate, res.ProcessedTPS, res.MaxLag, res.MaxBacklog, state)
		}
	}

	fmt.Println("\nSurvivable-rate summary (binary search):")
	rows, err := bench.WormStorm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	bench.WriteWormReport(printWriter{}, rows)
}

// printWriter adapts fmt.Print to io.Writer for the report helper.
type printWriter struct{}

func (printWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
