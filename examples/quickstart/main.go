// Quickstart: bring up the Go BGP router with two peers over loopback
// TCP, announce routes from both sides, and watch the decision process
// pick best paths and program the forwarding table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/speaker"
	"bgpbench/internal/wire"
)

func main() {
	// 1. Start a router (AS 65000) that accepts two neighbours.
	router, err := core.NewRouter(core.Config{
		AS:         65000,
		ID:         netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr: "127.0.0.1:0",
		Neighbors: []core.NeighborConfig{
			{AS: 65001},
			{AS: 65002},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Start(); err != nil {
		log.Fatal(err)
	}
	defer router.Stop()
	fmt.Printf("router: AS 65000 listening on %s\n", router.ListenAddr())

	// 2. Connect two speakers.
	sp1 := speaker.New(speaker.Config{
		AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: router.ListenAddr(),
	})
	if err := sp1.Connect(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	defer sp1.Stop()
	sp2 := speaker.New(speaker.Config{
		AS: 65002, ID: netaddr.MustParseAddr("2.2.2.2"), Target: router.ListenAddr(),
	})
	if err := sp2.Connect(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	defer sp2.Stop()
	fmt.Println("speakers: AS 65001 and AS 65002 established")

	// 3. Speaker 1 announces a route with a 3-hop path.
	route := core.Route{
		Prefix: netaddr.MustParsePrefix("192.0.2.0/24"),
		Path:   wire.NewASPath(65001, 300, 400),
	}
	if err := sp1.Announce([]core.Route{route}, 1); err != nil {
		log.Fatal(err)
	}
	waitFIB(router, 1)
	show(router, "after speaker 1's announcement (path 65001 300 400)")

	// 4. Speaker 2 announces the same prefix with a shorter path: the
	// decision process must switch the best route and update the FIB.
	better := core.Route{
		Prefix: route.Prefix,
		Path:   wire.NewASPath(65002, 400),
	}
	if err := sp2.Announce([]core.Route{better}, 1); err != nil {
		log.Fatal(err)
	}
	waitNextHop(router, route.Prefix, netaddr.MustParseAddr("2.2.2.2"))
	show(router, "after speaker 2's shorter path (65002 400): best route replaced")

	// 5. Speaker 2 withdraws: the router falls back to speaker 1's route.
	if err := sp2.Withdraw([]core.Route{better}, 1); err != nil {
		log.Fatal(err)
	}
	waitNextHop(router, route.Prefix, netaddr.MustParseAddr("1.1.1.1"))
	show(router, "after speaker 2's withdrawal: fallback to speaker 1")

	fmt.Printf("\nrouter processed %d transactions, %d forwarding-table changes\n",
		router.Transactions(), router.FIBChanges())
}

func show(router *core.Router, label string) {
	fmt.Printf("\n%s:\n", label)
	fmt.Printf("  FIB (%d entries):\n", router.FIB().Len())
	router.FIB().Walk(func(p netaddr.Prefix, e fib.Entry) bool {
		fmt.Printf("    %-18s via %s (port %d)\n", p, e.NextHop, e.Port)
		return true
	})
}

func waitFIB(router *core.Router, n int) {
	for i := 0; i < 5000 && router.FIB().Len() < n; i++ {
		time.Sleep(time.Millisecond)
	}
}

func waitNextHop(router *core.Router, p netaddr.Prefix, nh netaddr.Addr) {
	for i := 0; i < 5000; i++ {
		if e, ok := router.FIB().Lookup(p.Addr()); ok && e.NextHop == nh {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatalf("next hop for %v never became %v", p, nh)
}
