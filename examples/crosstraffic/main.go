// Crosstraffic: reproduce the paper's central architectural finding on
// the modeled substrate — shared control/data processing resources let
// forwarding load crush BGP convergence (and BGP bursts cause packet
// loss), while the network processor's dedicated data path is immune.
//
// The example runs Scenario 2 (start-up, large packets) on all four
// modeled systems at increasing cross-traffic, then zooms into the
// Pentium III to show the forwarding-rate dip of Figure 6(c).
//
//	go run ./examples/crosstraffic [-n 10000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bgpbench/internal/bench"
	"bgpbench/internal/platform"
)

func main() {
	n := flag.Int("n", 10000, "routing table size in prefixes")
	flag.Parse()

	scn, err := bench.ScenarioByNum(2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BGP start-up throughput under cross-traffic (%s, table %d)\n\n", scn, *n)
	fmt.Printf("%-12s", "cross Mbps")
	levels := []float64{0, 100, 200, 300, 500, 784, 940}
	for _, m := range levels {
		fmt.Printf(" %9.0f", m)
	}
	fmt.Println()

	for _, sys := range platform.Systems() {
		fmt.Printf("%-12s", sys.Name)
		for _, mbps := range levels {
			if mbps > sys.ForwardCapMbps {
				fmt.Printf(" %9s", "-")
				continue
			}
			res, err := bench.RunModeled(sys, scn, *n, platform.CrossTraffic{Mbps: mbps})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.1f", res.TPS)
		}
		fmt.Printf("   (line rate %.0f Mbps)\n", sys.ForwardCapMbps)
	}

	fmt.Println("\nNote the IXP2400 row: identical throughput at every load level —")
	fmt.Println("its packet processors forward independently of the XScale control CPU.")

	// Zoom: Pentium III under 300 Mbps while replacing best routes
	// (Scenario 8) — BGP slows down AND forwarding loses packets.
	fmt.Println("\nPentium III, Scenario 8, 300 Mbps cross-traffic (Figure 6):")
	results, err := bench.Fig6(*n, 300)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("\n  cross=%.0f Mbps: %.1f tps", r.CrossMbps, r.TPS)
		if r.CrossMbps > 0 {
			measured := r.Phases[len(r.Phases)-1]
			fmt.Printf(", forwarding achieved %.1f of %.0f Mbps during Phase 3",
				measured.ForwardedMbps, measured.OfferedMbps)
		}
		fmt.Println()
		r.Traces.RenderASCII(os.Stdout, 72)
	}
}
